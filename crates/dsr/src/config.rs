//! DSR protocol configuration and the caching-strategy switches under
//! study.
//!
//! The paper compares five protocol variants; all are expressed as
//! [`DsrConfig`] values:
//!
//! | Variant | Constructor |
//! |---|---|
//! | base DSR | [`DsrConfig::base`] |
//! | wider error notification | [`DsrConfig::wider_error`] |
//! | adaptive route expiry | [`DsrConfig::adaptive_expiry`] |
//! | negative caches | [`DsrConfig::negative_cache`] |
//! | all three combined ("DSR-C") | [`DsrConfig::combined`] |

use sim_core::SimDuration;

/// Timer-based route expiry policy (Section 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExpiryPolicy {
    /// Base DSR: cached routes never expire.
    None,
    /// A single fixed timeout for every node (swept 1..50 s in Fig. 1).
    Static {
        /// Prune cached-route portions unused for this long.
        timeout: SimDuration,
    },
    /// Per-node adaptive selection:
    /// `T = max(alpha * avg_route_lifetime, time_since_last_link_break)`,
    /// recomputed every `recompute_period` and clamped to at least
    /// `min_timeout`.
    Adaptive {
        /// Multiplier on the average observed route lifetime. The provided
        /// paper text garbles the constant; 1.25 reproduces the reported
        /// behaviour and the `ablation_adaptive` experiment shows a broad
        /// optimum across [0.75, 1.5].
        alpha: f64,
        /// Floor for the timeout (paper: 1 s).
        min_timeout: SimDuration,
        /// How often `T` is recomputed and the cache swept (paper: 0.5 s).
        recompute_period: SimDuration,
        /// Include the *time since last link breakage* correction term.
        /// The paper motivates it for bursty break patterns; disabling it
        /// is the `ablation_adaptive` experiment.
        quiet_term: bool,
    },
}

impl ExpiryPolicy {
    /// The paper's adaptive policy with default constants.
    pub fn adaptive() -> Self {
        ExpiryPolicy::Adaptive {
            alpha: 1.25,
            min_timeout: SimDuration::from_secs(1.0),
            recompute_period: SimDuration::from_millis(500.0),
            quiet_term: true,
        }
    }

    /// The adaptive policy with a custom `alpha` (ablation sweeps).
    pub fn adaptive_with_alpha(alpha: f64) -> Self {
        match ExpiryPolicy::adaptive() {
            ExpiryPolicy::Adaptive { min_timeout, recompute_period, quiet_term, .. } => {
                ExpiryPolicy::Adaptive { alpha, min_timeout, recompute_period, quiet_term }
            }
            _ => unreachable!("adaptive() returns Adaptive"),
        }
    }
}

/// When does a node re-broadcast a wider route error it received?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WiderErrorRebroadcast {
    /// The paper's predicate: the node cached a route over the broken link
    /// *and* used such a route in packets it forwarded.
    #[default]
    CachedAndUsed,
    /// Re-broadcast whenever the node cached the broken link (drops the
    /// usage condition — more cleanup, more overhead).
    CachedOnly,
    /// Unconditional flood (every first copy is repeated network-wide).
    Flood,
}

/// Route-cache organization (the paper uses path caches; link caches are
/// the Hu & Johnson alternative, provided as an ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheOrganization {
    /// Whole paths rooted at the caching node (the paper's choice).
    #[default]
    Path,
    /// A graph of individual links answered by shortest-path search.
    Link,
}

/// Negative cache parameters (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegativeCacheConfig {
    /// Maximum broken links remembered (FIFO replacement). The provided
    /// paper text garbles the value; 64 links is ample for a 100-node
    /// network and configurable here.
    pub capacity: usize,
    /// How long a broken link stays blacklisted (paper: `Nt` = 10 s).
    pub timeout: SimDuration,
}

impl Default for NegativeCacheConfig {
    fn default() -> Self {
        NegativeCacheConfig { capacity: 64, timeout: SimDuration::from_secs(10.0) }
    }
}

/// Preemptive-DSR parameters (Ramesh et al.): repair routes early when a
/// next-hop's receive power sinks below a warning threshold, before the
/// link actually breaks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptiveConfig {
    /// Receive-power warning threshold in watts. A frame from a neighbor
    /// arriving below this power marks the link as about to break. The
    /// default is 2x the radio's reception threshold (3.652e-10 W for the
    /// 250 m nominal range), i.e. the preemptive region starts roughly
    /// 30 m before the edge of range under the two-ray model.
    pub threshold_w: f64,
    /// Minimum spacing between two preemptive repairs of the same
    /// neighbor, so a node flapping around the threshold does not spray
    /// route errors.
    pub holdoff: SimDuration,
}

impl Default for PreemptiveConfig {
    fn default() -> Self {
        PreemptiveConfig { threshold_w: 2.0 * 3.652e-10, holdoff: SimDuration::from_secs(1.0) }
    }
}

/// Non-optimal route suppression parameters (DSR-NORS, Seet et al.): veto
/// cache inserts and duplicate route replies whose path is longer than
/// the best known by more than a stretch factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuppressionConfig {
    /// Maximum tolerated path stretch: a candidate with more than
    /// `stretch * best_known_hops` hops is suppressed. 1.0 keeps only
    /// best-length paths; the default 1.5 tolerates 50% detours.
    pub stretch: f64,
}

impl Default for SuppressionConfig {
    fn default() -> Self {
        SuppressionConfig { stretch: 1.5 }
    }
}

/// Multipath caching parameters: retain up to `k` link-disjoint paths per
/// destination and fail over to a survivor on a route error instead of
/// launching a fresh discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultipathConfig {
    /// Maximum link-disjoint paths retained per destination.
    pub k: usize,
}

impl Default for MultipathConfig {
    fn default() -> Self {
        MultipathConfig { k: 2 }
    }
}

/// Full DSR configuration: standard optimizations (on by default, as in the
/// CMU ns-2 implementation the paper extends) plus the three
/// cache-correctness techniques (off by default).
#[derive(Debug, Clone, PartialEq)]
pub struct DsrConfig {
    // --- standard DSR optimizations -----------------------------------
    /// Intermediate nodes answer route requests from their caches.
    pub replies_from_cache: bool,
    /// Intermediate nodes try an alternate cached route when a data packet
    /// meets a broken link (packet salvaging).
    pub salvaging: bool,
    /// Maximum times one packet may be salvaged.
    pub max_salvage_count: u8,
    /// Sources piggyback the last route error on their next route request
    /// (gratuitous route repair).
    pub gratuitous_repair: bool,
    /// Promiscuous listening: snoop overheard source routes into the cache
    /// and process overheard route errors.
    pub promiscuous: bool,
    /// Send gratuitous route replies advertising shorter routes learned by
    /// overhearing.
    pub gratuitous_replies: bool,
    /// Try a one-hop (TTL 1) route request before flooding.
    pub nonpropagating_requests: bool,

    // --- buffers and timers --------------------------------------------
    /// Send-buffer capacity at traffic sources (paper: 64 packets).
    pub send_buffer_capacity: usize,
    /// Packets are dropped after waiting this long for a route (30 s).
    pub send_buffer_timeout: SimDuration,
    /// Route cache capacity in paths (or links, for the link-cache
    /// organization).
    pub cache_capacity: usize,
    /// Route-cache organization.
    pub cache_organization: CacheOrganization,
    /// How long to wait for a reply to a non-propagating request before
    /// flooding (ns-2: 30 ms).
    pub nonprop_timeout: SimDuration,
    /// Base retransmission period for flooded requests; doubles per retry.
    pub request_period: SimDuration,
    /// Ceiling on the request retransmission period (ns-2: 10 s).
    pub max_request_period: SimDuration,
    /// Uniform jitter applied to broadcasts and cache replies to
    /// de-synchronize neighbors (ns-2 uses the same trick).
    pub broadcast_jitter: SimDuration,

    // --- the paper's three techniques ----------------------------------
    /// Wider error notification: broadcast route errors with conditional
    /// re-broadcast instead of unicasting to the source only.
    pub wider_error_notification: bool,
    /// Re-broadcast predicate used when wider error notification is on
    /// (`ablation_wider_error` compares the options).
    pub wider_error_rebroadcast: WiderErrorRebroadcast,
    /// Timer-based route expiry policy.
    pub expiry: ExpiryPolicy,
    /// Negative cache of recently broken links.
    pub negative_cache: Option<NegativeCacheConfig>,

    // --- post-paper strategies (strategy matrix) ------------------------
    /// Preemptive-DSR: signal-strength-triggered early route repair.
    pub preemptive: Option<PreemptiveConfig>,
    /// Non-optimal route suppression (DSR-NORS).
    pub suppression: Option<SuppressionConfig>,
    /// k-link-disjoint multipath caching with RERR failover.
    pub multipath: Option<MultipathConfig>,
}

impl DsrConfig {
    /// Base DSR as in the CMU ns-2 distribution: all four standard
    /// optimizations, none of the paper's cache-correctness techniques.
    pub fn base() -> Self {
        DsrConfig {
            replies_from_cache: true,
            salvaging: true,
            max_salvage_count: 15,
            gratuitous_repair: true,
            promiscuous: true,
            gratuitous_replies: true,
            nonpropagating_requests: true,
            send_buffer_capacity: 64,
            send_buffer_timeout: SimDuration::from_secs(30.0),
            cache_capacity: 64,
            cache_organization: CacheOrganization::Path,
            nonprop_timeout: SimDuration::from_millis(30.0),
            request_period: SimDuration::from_millis(500.0),
            max_request_period: SimDuration::from_secs(10.0),
            broadcast_jitter: SimDuration::from_millis(10.0),
            wider_error_notification: false,
            wider_error_rebroadcast: WiderErrorRebroadcast::CachedAndUsed,
            expiry: ExpiryPolicy::None,
            negative_cache: None,
            preemptive: None,
            suppression: None,
            multipath: None,
        }
    }

    /// Base DSR + wider error notification.
    pub fn wider_error() -> Self {
        DsrConfig { wider_error_notification: true, ..DsrConfig::base() }
    }

    /// Base DSR + adaptive timer-based route expiry.
    pub fn adaptive_expiry() -> Self {
        DsrConfig { expiry: ExpiryPolicy::adaptive(), ..DsrConfig::base() }
    }

    /// Base DSR + static timer-based route expiry with the given timeout.
    pub fn static_expiry(timeout: SimDuration) -> Self {
        DsrConfig { expiry: ExpiryPolicy::Static { timeout }, ..DsrConfig::base() }
    }

    /// Base DSR + negative caches.
    pub fn negative_cache() -> Self {
        DsrConfig { negative_cache: Some(NegativeCacheConfig::default()), ..DsrConfig::base() }
    }

    /// Base DSR + preemptive signal-strength route repair.
    pub fn preemptive() -> Self {
        DsrConfig { preemptive: Some(PreemptiveConfig::default()), ..DsrConfig::base() }
    }

    /// Base DSR + non-optimal route suppression.
    pub fn suppression() -> Self {
        DsrConfig { suppression: Some(SuppressionConfig::default()), ..DsrConfig::base() }
    }

    /// Base DSR + k-link-disjoint multipath caching.
    pub fn multipath() -> Self {
        DsrConfig { multipath: Some(MultipathConfig::default()), ..DsrConfig::base() }
    }

    /// All three techniques combined — the paper's best-performing variant.
    pub fn combined() -> Self {
        DsrConfig {
            wider_error_notification: true,
            expiry: ExpiryPolicy::adaptive(),
            negative_cache: Some(NegativeCacheConfig::default()),
            ..DsrConfig::base()
        }
    }

    /// Short label for result tables ("DSR", "DSR-WE", "DSR-AE", "DSR-NC",
    /// "DSR-C", or "DSR-SE(t)" for static expiry).
    pub fn label(&self) -> String {
        let mut tags = Vec::new();
        if self.wider_error_notification {
            tags.push("WE".to_string());
        }
        match self.expiry {
            ExpiryPolicy::None => {}
            ExpiryPolicy::Static { timeout } => tags.push(format!("SE({:.0}s)", timeout.as_secs())),
            ExpiryPolicy::Adaptive { .. } => tags.push("AE".to_string()),
        }
        if self.negative_cache.is_some() {
            tags.push("NC".to_string());
        }
        if self.preemptive.is_some() {
            tags.push("PR".to_string());
        }
        if self.suppression.is_some() {
            tags.push("SUP".to_string());
        }
        if self.multipath.is_some() {
            tags.push("MP".to_string());
        }
        let base = match tags.len() {
            0 => "DSR".to_string(),
            3 if tags[1] == "AE" => "DSR-C".to_string(),
            _ => format!("DSR-{}", tags.join("+")),
        };
        match self.cache_organization {
            CacheOrganization::Path => base,
            CacheOrganization::Link => format!("{base}/LC"),
        }
    }

    /// The same variant with the link-cache organization (ablation).
    pub fn with_link_cache(mut self) -> Self {
        self.cache_organization = CacheOrganization::Link;
        self
    }
}

impl Default for DsrConfig {
    fn default() -> Self {
        DsrConfig::base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels() {
        assert_eq!(DsrConfig::base().label(), "DSR");
        assert_eq!(DsrConfig::wider_error().label(), "DSR-WE");
        assert_eq!(DsrConfig::adaptive_expiry().label(), "DSR-AE");
        assert_eq!(DsrConfig::negative_cache().label(), "DSR-NC");
        assert_eq!(DsrConfig::combined().label(), "DSR-C");
        assert_eq!(DsrConfig::static_expiry(SimDuration::from_secs(10.0)).label(), "DSR-SE(10s)");
        assert_eq!(DsrConfig::preemptive().label(), "DSR-PR");
        assert_eq!(DsrConfig::suppression().label(), "DSR-SUP");
        assert_eq!(DsrConfig::multipath().label(), "DSR-MP");
        let stacked =
            DsrConfig { multipath: Some(MultipathConfig::default()), ..DsrConfig::wider_error() };
        assert_eq!(stacked.label(), "DSR-WE+MP", "new tags compose with the paper's");
    }

    #[test]
    fn strategy_matrix_defaults() {
        let p = PreemptiveConfig::default();
        assert!(p.threshold_w > 3.652e-10, "warning threshold sits above the rx threshold");
        assert_eq!(p.holdoff, SimDuration::from_secs(1.0));
        assert!((SuppressionConfig::default().stretch - 1.5).abs() < 1e-12);
        assert_eq!(MultipathConfig::default().k, 2);
        assert!(DsrConfig::base().preemptive.is_none());
        assert!(DsrConfig::preemptive().preemptive.is_some());
        assert!(DsrConfig::suppression().suppression.is_some());
        assert!(DsrConfig::multipath().multipath.is_some());
    }

    #[test]
    fn base_has_standard_optimizations_only() {
        let c = DsrConfig::base();
        assert!(c.replies_from_cache && c.salvaging && c.promiscuous);
        assert!(!c.wider_error_notification);
        assert_eq!(c.expiry, ExpiryPolicy::None);
        assert!(c.negative_cache.is_none());
        assert_eq!(c.send_buffer_capacity, 64);
        assert_eq!(c.send_buffer_timeout, SimDuration::from_secs(30.0));
    }

    #[test]
    fn combined_enables_all_three() {
        let c = DsrConfig::combined();
        assert!(c.wider_error_notification);
        assert!(matches!(c.expiry, ExpiryPolicy::Adaptive { .. }));
        assert!(c.negative_cache.is_some());
    }

    #[test]
    fn adaptive_defaults_match_paper() {
        let ExpiryPolicy::Adaptive { min_timeout, recompute_period, .. } = ExpiryPolicy::adaptive()
        else {
            panic!("expected adaptive policy");
        };
        assert_eq!(min_timeout, SimDuration::from_secs(1.0));
        assert_eq!(recompute_period, SimDuration::from_millis(500.0));
    }

    #[test]
    fn negative_cache_defaults_match_paper() {
        let c = NegativeCacheConfig::default();
        assert_eq!(c.timeout, SimDuration::from_secs(10.0));
        assert!(c.capacity > 0);
    }
}
