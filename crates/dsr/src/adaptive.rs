//! Adaptive timeout selection for timer-based route expiry.
//!
//! From the paper: *"We propose a heuristic for adaptive selection of
//! timeouts locally at each node based on the average route lifetime and
//! the time between link breaks seen by the node. [...] the timeout period
//! `T` is calculated as `T = max(alpha * average route lifetime, time since
//! last link breakage)`."*
//!
//! The first term tracks route stability when breaks occur uniformly in
//! time; the second corrects the estimate during quiet periods so `T` keeps
//! growing when nothing is breaking (otherwise a burst of past breaks would
//! keep expiring perfectly good routes forever).

use sim_core::{SimDuration, SimTime};

/// Per-node adaptive timeout estimator.
///
/// # Example
///
/// ```
/// use dsr::AdaptiveTimeout;
/// use sim_core::{SimDuration, SimTime};
///
/// let mut est = AdaptiveTimeout::new(1.0, SimDuration::from_secs(1.0));
/// est.observe_break(SimDuration::from_secs(4.0), SimTime::from_secs(10.0));
/// // alpha * avg lifetime = 4 s; 2 s since the break => T = 4 s.
/// let t = est.timeout(SimTime::from_secs(12.0));
/// assert_eq!(t, SimDuration::from_secs(4.0));
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveTimeout {
    alpha: f64,
    min_timeout: SimDuration,
    lifetime_sum: f64,
    lifetime_count: u64,
    last_break: SimTime,
}

impl AdaptiveTimeout {
    /// Creates an estimator with the given `alpha` multiplier and floor.
    ///
    /// Until the first observed break, "time since last link breakage" is
    /// measured from the start of the run.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive and finite.
    pub fn new(alpha: f64, min_timeout: SimDuration) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "invalid alpha {alpha}");
        AdaptiveTimeout {
            alpha,
            min_timeout,
            lifetime_sum: 0.0,
            lifetime_count: 0,
            last_break: SimTime::ZERO,
        }
    }

    /// Records that a cached route with the given `lifetime` (time since it
    /// was last entered in the cache) broke at `now` — via link-layer
    /// feedback or a received route error.
    pub fn observe_break(&mut self, lifetime: SimDuration, now: SimTime) {
        self.lifetime_sum += lifetime.as_secs();
        self.lifetime_count += 1;
        self.last_break = self.last_break.max(now);
    }

    /// Average lifetime of all routes observed to break so far, if any.
    pub fn average_lifetime(&self) -> Option<SimDuration> {
        (self.lifetime_count > 0)
            .then(|| SimDuration::from_secs(self.lifetime_sum / self.lifetime_count as f64))
    }

    /// Number of route breaks observed.
    pub fn breaks_observed(&self) -> u64 {
        self.lifetime_count
    }

    /// The current timeout `T` at instant `now`.
    pub fn timeout(&self, now: SimTime) -> SimDuration {
        self.timeout_with(now, true)
    }

    /// `T` with the *time since last break* correction term optionally
    /// disabled (the `ablation_adaptive` experiment).
    pub fn timeout_with(&self, now: SimTime, quiet_term: bool) -> SimDuration {
        let since_break =
            if quiet_term { now.saturating_since(self.last_break) } else { SimDuration::ZERO };
        let scaled_avg =
            self.average_lifetime().map(|avg| avg.mul_f64(self.alpha)).unwrap_or(SimDuration::ZERO);
        scaled_avg.max(since_break).max(self.min_timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn floor_applies_before_any_breaks() {
        let est = AdaptiveTimeout::new(1.0, d(1.0));
        assert_eq!(est.timeout(t(0.0)), d(1.0));
    }

    #[test]
    fn quiet_start_grows_with_time() {
        // No breaks yet: T = time since start.
        let est = AdaptiveTimeout::new(1.0, d(1.0));
        assert_eq!(est.timeout(t(42.0)), d(42.0));
    }

    #[test]
    fn average_lifetime_accumulates() {
        let mut est = AdaptiveTimeout::new(1.0, d(1.0));
        est.observe_break(d(2.0), t(1.0));
        est.observe_break(d(6.0), t(2.0));
        assert_eq!(est.average_lifetime(), Some(d(4.0)));
        assert_eq!(est.breaks_observed(), 2);
    }

    #[test]
    fn alpha_scales_the_average_term() {
        let mut est = AdaptiveTimeout::new(2.0, d(1.0));
        est.observe_break(d(3.0), t(10.0));
        // Right after the break: since_break ~ 0, so T = 2 * 3 = 6 s.
        assert_eq!(est.timeout(t(10.0)), d(6.0));
    }

    #[test]
    fn quiet_period_term_takes_over() {
        let mut est = AdaptiveTimeout::new(1.0, d(1.0));
        est.observe_break(d(2.0), t(10.0));
        // 2 s average, but 30 s of silence since: T tracks the silence.
        assert_eq!(est.timeout(t(40.0)), d(30.0));
    }

    #[test]
    fn bursty_breaks_do_not_collapse_timeout_later() {
        let mut est = AdaptiveTimeout::new(1.0, d(1.0));
        for i in 0..5 {
            est.observe_break(d(0.5), t(5.0 + 0.1 * f64::from(i)));
        }
        // Average lifetime is tiny, but long silence dominates.
        assert!(est.timeout(t(100.0)) >= d(90.0));
    }

    #[test]
    fn min_timeout_floors_small_estimates() {
        let mut est = AdaptiveTimeout::new(0.1, d(1.0));
        est.observe_break(d(0.2), t(5.0));
        assert_eq!(est.timeout(t(5.0)), d(1.0));
    }

    #[test]
    #[should_panic(expected = "invalid alpha")]
    fn non_positive_alpha_rejected() {
        let _ = AdaptiveTimeout::new(0.0, d(1.0));
    }
}
