//! Route-request state: discovery retry backoff and duplicate suppression.

use std::collections::{HashMap, VecDeque};

use sim_core::{NodeId, SimDuration};

/// Phase of an in-flight route discovery for one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscoveryPhase {
    /// A TTL-1 (non-propagating) request is out; if it times out, flood.
    NonPropagating,
    /// A network-wide flood is out; retries back off exponentially.
    Flooding,
}

/// Per-target state of an in-flight discovery.
#[derive(Debug, Clone, Copy)]
pub struct Discovery {
    /// Request id carried by the outstanding request.
    pub request_id: u64,
    /// Current phase.
    pub phase: DiscoveryPhase,
    /// How many floods have been sent (drives the backoff).
    pub flood_attempts: u32,
}

/// Tracks the discoveries a node is running plus the `(origin, id)` pairs
/// of requests recently seen (for duplicate suppression when forwarding).
#[derive(Debug)]
pub struct RequestTable {
    next_request_id: u64,
    in_flight: HashMap<NodeId, Discovery>,
    seen: VecDeque<(NodeId, u64)>,
    seen_capacity: usize,
}

impl RequestTable {
    /// Creates an empty table remembering up to `seen_capacity` foreign
    /// requests.
    ///
    /// # Panics
    ///
    /// Panics if `seen_capacity` is zero.
    pub fn new(seen_capacity: usize) -> Self {
        assert!(seen_capacity > 0, "seen capacity must be positive");
        RequestTable {
            next_request_id: 0,
            in_flight: HashMap::new(),
            seen: VecDeque::new(),
            seen_capacity,
        }
    }

    /// Whether a discovery for `target` is outstanding.
    pub fn discovering(&self, target: NodeId) -> bool {
        self.in_flight.contains_key(&target)
    }

    /// Number of discoveries currently outstanding (observability gauge).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// The outstanding discovery for `target`, if any.
    pub fn discovery(&self, target: NodeId) -> Option<&Discovery> {
        self.in_flight.get(&target)
    }

    /// Starts a discovery for `target` and returns its fresh request id.
    /// `nonprop` selects the initial phase.
    ///
    /// # Panics
    ///
    /// Panics if a discovery for `target` is already outstanding.
    pub fn start(&mut self, target: NodeId, nonprop: bool) -> u64 {
        assert!(!self.discovering(target), "discovery for {target} already in flight");
        let id = self.next_request_id;
        self.next_request_id += 1;
        let phase = if nonprop { DiscoveryPhase::NonPropagating } else { DiscoveryPhase::Flooding };
        self.in_flight.insert(
            target,
            Discovery { request_id: id, phase, flood_attempts: u32::from(!nonprop) },
        );
        id
    }

    /// Escalates the discovery for `target` to the next attempt (non-prop
    /// timeout -> first flood, or flood -> flood retry) and returns the new
    /// request id plus the backoff to wait before declaring it timed out.
    ///
    /// # Panics
    ///
    /// Panics if no discovery for `target` is outstanding.
    pub fn escalate(
        &mut self,
        target: NodeId,
        base_period: SimDuration,
        max_period: SimDuration,
    ) -> (u64, SimDuration) {
        let id = self.next_request_id;
        self.next_request_id += 1;
        let disc =
            self.in_flight.get_mut(&target).expect("escalating a discovery that is not in flight");
        disc.request_id = id;
        disc.phase = DiscoveryPhase::Flooding;
        let exponent = disc.flood_attempts.min(16);
        disc.flood_attempts += 1;
        let backoff = base_period.mul_f64(f64::from(1u32 << exponent)).min(max_period);
        (id, backoff)
    }

    /// Ends the discovery for `target` (a route was found or the send
    /// buffer drained). Returns whether one was outstanding.
    pub fn finish(&mut self, target: NodeId) -> bool {
        self.in_flight.remove(&target).is_some()
    }

    /// Duplicate suppression for forwarded requests: returns `true` the
    /// first time `(origin, id)` is seen, `false` on repeats.
    pub fn note_seen(&mut self, origin: NodeId, request_id: u64) -> bool {
        let key = (origin, request_id);
        if self.seen.contains(&key) {
            return false;
        }
        if self.seen.len() >= self.seen_capacity {
            self.seen.pop_front();
        }
        self.seen.push_back(key);
        true
    }
}

impl Default for RequestTable {
    fn default() -> Self {
        RequestTable::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn start_assigns_unique_ids() {
        let mut t = RequestTable::default();
        let a = t.start(n(1), true);
        let b = t.start(n(2), true);
        assert_ne!(a, b);
        assert!(t.discovering(n(1)));
        assert_eq!(t.discovery(n(1)).unwrap().phase, DiscoveryPhase::NonPropagating);
    }

    #[test]
    fn escalation_doubles_backoff_up_to_cap() {
        let mut t = RequestTable::default();
        t.start(n(1), true);
        let base = SimDuration::from_millis(500.0);
        let max = SimDuration::from_secs(10.0);
        let (_, b0) = t.escalate(n(1), base, max);
        let (_, b1) = t.escalate(n(1), base, max);
        let (_, b2) = t.escalate(n(1), base, max);
        assert_eq!(b0, base);
        assert_eq!(b1, base * 2);
        assert_eq!(b2, base * 4);
        for _ in 0..10 {
            let (_, b) = t.escalate(n(1), base, max);
            assert!(b <= max);
        }
        let (_, capped) = t.escalate(n(1), base, max);
        assert_eq!(capped, max);
    }

    #[test]
    fn escalation_moves_to_flooding() {
        let mut t = RequestTable::default();
        t.start(n(1), true);
        t.escalate(n(1), SimDuration::from_millis(500.0), SimDuration::from_secs(10.0));
        assert_eq!(t.discovery(n(1)).unwrap().phase, DiscoveryPhase::Flooding);
    }

    #[test]
    fn finish_clears_state() {
        let mut t = RequestTable::default();
        t.start(n(1), false);
        assert!(t.finish(n(1)));
        assert!(!t.discovering(n(1)));
        assert!(!t.finish(n(1)));
    }

    #[test]
    fn duplicate_suppression() {
        let mut t = RequestTable::default();
        assert!(t.note_seen(n(3), 7));
        assert!(!t.note_seen(n(3), 7));
        assert!(t.note_seen(n(3), 8));
        assert!(t.note_seen(n(4), 7));
    }

    #[test]
    fn seen_cache_is_bounded_fifo() {
        let mut t = RequestTable::new(2);
        t.note_seen(n(1), 1);
        t.note_seen(n(2), 2);
        t.note_seen(n(3), 3); // evicts (1, 1)
        assert!(t.note_seen(n(1), 1), "evicted entry forgotten");
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_start_rejected() {
        let mut t = RequestTable::default();
        t.start(n(1), true);
        t.start(n(1), true);
    }
}
