//! The DSR protocol agent.
//!
//! One [`DsrNode`] per simulated node, driven — like the MAC — as a pure
//! state machine: traffic origination, packet receptions, link-layer
//! failure feedback, and timers go in; [`DsrCommand`]s come out (send a
//! packet via the MAC, deliver data to the application, arm timers, report
//! drops and metric events).
//!
//! Implements the full protocol of the paper's study:
//!
//! - route discovery (non-propagating request first, then network-wide
//!   floods with exponential backoff), replies from the target *and* from
//!   intermediate caches, send-buffering at sources;
//! - route maintenance from link-layer feedback, with packet salvaging and
//!   gratuitous route repair (error piggybacked on the next request);
//! - promiscuous listening: snooping overheard source routes and errors,
//!   and gratuitous replies advertising shorter routes;
//! - the paper's three cache-correctness techniques, selected by
//!   [`DsrConfig`]: wider error notification, timer-based route expiry
//!   (static or adaptive), and negative caches.

use std::collections::{HashMap, HashSet, VecDeque};

use packet::{
    CacheDecision, CacheHitKind, CacheInsertProvenance, CacheRemovalCause, DataPacket, DropReason,
    ErrorDelivery, Link, Packet, ProtocolEvent, Route, RouteErrorPkt, RouteReply, RouteRequest,
    SuppressedAction,
};

use sim_core::rng::uniform;
use sim_core::{NodeId, SimDuration, SimRng, SimTime};

use crate::adaptive::AdaptiveTimeout;
use crate::cache::link_cache::LinkCache;
use crate::cache::negative::NegativeCache;
use crate::cache::path_cache::PathCache;
use crate::cache::{CacheEvent, RemovedLink, RouteCache};
use crate::config::{CacheOrganization, DsrConfig, ExpiryPolicy, WiderErrorRebroadcast};
use crate::request_table::RequestTable;
use crate::send_buffer::{PendingData, SendBuffer};

/// TTL used for network-wide floods.
const FLOOD_TTL: u8 = 255;
/// How many recently processed wider-error uids to remember.
const SEEN_ERROR_CACHE: usize = 4096;
/// How many recent gratuitous replies to remember (storm suppression).
const GRAT_REPLY_CACHE: usize = 32;
/// Minimum spacing between gratuitous replies for the same flow.
const GRAT_REPLY_HOLDOFF: SimDuration = SimDuration::from_micros_u64(1_000_000);
/// How many answered `(origin, request_id)` pairs the suppression
/// bookkeeping remembers (FIFO replacement).
const ANSWERED_REQUEST_CACHE: usize = 256;

/// Per-neighbor signal-strength state for Preemptive-DSR.
#[derive(Debug, Clone, Copy, Default)]
struct NeighborSignal {
    /// Last observation was below the warning threshold.
    below: bool,
    /// When the last preemptive repair for this neighbor fired.
    last_repair: Option<SimTime>,
    /// A repair fired and the next packet routed over the fading link
    /// still owes its source a warning route error.
    warn_armed: bool,
}

/// Timers the agent asks the driver to run. `SetTimer` replaces any pending
/// timer with the same value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DsrTimer {
    /// Periodic housekeeping: cache expiry sweep, send-buffer purge,
    /// negative-cache purge.
    Tick,
    /// The outstanding route discovery for this target timed out.
    RequestTimeout(NodeId),
}

/// Protocol events emitted for the metrics layer (shared vocabulary from
/// the `packet` crate).
pub type DsrEvent = ProtocolEvent;

/// Effects the driver must apply after feeding the agent an input.
#[derive(Debug, Clone, PartialEq)]
pub enum DsrCommand {
    /// Hand `packet` to the MAC for `next_hop` (or broadcast) after
    /// `jitter`. Control packets (everything but data) go at control
    /// priority in the interface queue.
    Send {
        /// The network-layer packet.
        packet: Packet,
        /// MAC-level next hop.
        next_hop: NodeId,
        /// Random de-synchronization delay (zero for unicast forwards).
        jitter: SimDuration,
    },
    /// A data packet reached its final destination.
    DeliverData {
        /// The delivered packet (carrying origination time for the delay
        /// metric).
        packet: DataPacket,
    },
    /// Arm (or re-arm) a timer.
    SetTimer {
        /// Which timer.
        timer: DsrTimer,
        /// Absolute expiry.
        at: SimTime,
    },
    /// Disarm a timer if pending.
    CancelTimer {
        /// Which timer.
        timer: DsrTimer,
    },
    /// A packet was dropped.
    Drop {
        /// Unique id of the dropped packet.
        uid: u64,
        /// Why.
        reason: DropReason,
    },
    /// A metrics event occurred.
    Event {
        /// The event.
        event: DsrEvent,
    },
}

/// Per-node DSR protocol entity.
pub struct DsrNode {
    id: NodeId,
    cfg: DsrConfig,
    cache: Box<dyn RouteCache>,
    negative: Option<NegativeCache>,
    adaptive: AdaptiveTimeout,
    send_buffer: SendBuffer,
    requests: RequestTable,
    /// Last broken link learned, awaiting piggybacking on the next request
    /// (gratuitous route repair).
    pending_error: Option<Link>,
    /// Wider-error uids already processed (re-broadcast suppression):
    /// FIFO order for bounded eviction plus a set for O(1) membership.
    seen_errors: VecDeque<u64>,
    seen_errors_set: HashSet<u64>,
    /// Recently sent gratuitous replies: `((source, destination), when)`.
    grat_replies: VecDeque<((NodeId, NodeId), SimTime)>,
    /// Preemptive-DSR: per-neighbor receive-power state (keyed access
    /// only, so map iteration order never leaks into behaviour).
    signal: HashMap<NodeId, NeighborSignal>,
    /// Suppression: best hop count already answered per
    /// `(origin, request_id)`, FIFO-bounded.
    answered_requests: VecDeque<((NodeId, u64), usize)>,
    uid_counter: u64,
    rng: SimRng,
    /// Cache-decision tracing (cache forensics). Off by default: no
    /// decision events are built and the cache's internal log stays
    /// unallocated, so the untraced hot path is untouched.
    trace_decisions: bool,
    /// Scratch buffer for draining the cache's internal event log.
    cache_event_buf: Vec<CacheEvent>,
}

impl std::fmt::Debug for DsrNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsrNode")
            .field("id", &self.id)
            .field("cached_paths", &self.cache.len())
            .field("buffered", &self.send_buffer.len())
            .finish()
    }
}

impl DsrNode {
    /// Creates the agent for `node`. `rng` should be a per-node stream
    /// (it only drives jitter draws).
    pub fn new(node: NodeId, cfg: DsrConfig, rng: SimRng) -> Self {
        DsrNode {
            id: node,
            cache: Self::build_cache(node, &cfg),
            negative: Self::build_negative(&cfg),
            adaptive: Self::build_adaptive(&cfg),
            send_buffer: Self::build_send_buffer(&cfg),
            requests: RequestTable::default(),
            pending_error: None,
            seen_errors: VecDeque::new(),
            seen_errors_set: HashSet::new(),
            grat_replies: VecDeque::new(),
            signal: HashMap::new(),
            answered_requests: VecDeque::new(),
            uid_counter: 0,
            rng,
            trace_decisions: false,
            cache_event_buf: Vec::new(),
            cfg,
        }
    }

    fn build_cache(node: NodeId, cfg: &DsrConfig) -> Box<dyn RouteCache> {
        let mut cache: Box<dyn RouteCache> = match cfg.cache_organization {
            CacheOrganization::Path => {
                let mut path_cache = PathCache::new(node, cfg.cache_capacity);
                // Multipath is a path-cache feature; the link-cache
                // organization already synthesizes alternates from its
                // link graph.
                if let Some(mp) = cfg.multipath {
                    path_cache.set_multipath(mp.k);
                }
                Box::new(path_cache)
            }
            CacheOrganization::Link => Box::new(LinkCache::new(node, cfg.cache_capacity)),
        };
        // Read-time expiry mirrors the sweep policy so lookups between
        // sweeps never serve just-expired state. The adaptive policy
        // starts at its floor; every tick re-installs the recomputed
        // timeout alongside the sweep.
        match cfg.expiry {
            ExpiryPolicy::None => {}
            ExpiryPolicy::Static { timeout } => cache.set_read_expiry(Some(timeout)),
            ExpiryPolicy::Adaptive { min_timeout, .. } => cache.set_read_expiry(Some(min_timeout)),
        }
        cache
    }

    fn build_negative(cfg: &DsrConfig) -> Option<NegativeCache> {
        cfg.negative_cache.map(NegativeCache::new)
    }

    fn build_adaptive(cfg: &DsrConfig) -> AdaptiveTimeout {
        match cfg.expiry {
            ExpiryPolicy::Adaptive { alpha, min_timeout, .. } => {
                AdaptiveTimeout::new(alpha, min_timeout)
            }
            // Unused estimator, still fed so ablations can inspect it.
            _ => AdaptiveTimeout::new(1.0, SimDuration::from_secs(1.0)),
        }
    }

    fn build_send_buffer(cfg: &DsrConfig) -> SendBuffer {
        SendBuffer::new(cfg.send_buffer_capacity, cfg.send_buffer_timeout)
    }

    /// This agent's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read access to the route cache (tests, metrics, examples).
    pub fn cache(&self) -> &dyn RouteCache {
        self.cache.as_ref()
    }

    /// Read access to the negative cache, when enabled.
    pub fn negative_cache(&self) -> Option<&NegativeCache> {
        self.negative.as_ref()
    }

    /// Read access to the adaptive-timeout estimator.
    pub fn adaptive(&self) -> &AdaptiveTimeout {
        &self.adaptive
    }

    /// Packets currently waiting for a route.
    pub fn buffered(&self) -> usize {
        self.send_buffer.len()
    }

    /// The uids of every packet waiting in the send buffer (conservation
    /// audits).
    pub fn buffered_uids(&self) -> Vec<u64> {
        self.send_buffer.uids()
    }

    /// Route discoveries currently in flight (observability gauge).
    pub fn discoveries_in_flight(&self) -> usize {
        self.requests.in_flight_count()
    }

    /// Checks the paper's invariant that the route cache and the negative
    /// cache are mutually exclusive with respect to the links they hold.
    /// Returns a description of the first violation, or `None` when the
    /// invariant holds (trivially so without a negative cache).
    pub fn cache_exclusion_violation(&self, now: SimTime) -> Option<String> {
        let neg = self.negative.as_ref()?;
        for link in neg.live_links(now) {
            if self.cache.contains_link(link) {
                return Some(format!(
                    "node {}: link {}->{} is both negatively cached and route-cached",
                    self.id, link.from, link.to
                ));
            }
        }
        None
    }

    fn fresh_uid(&mut self) -> u64 {
        let uid = (self.id.index() as u64) << 40 | self.uid_counter;
        self.uid_counter += 1;
        uid
    }

    fn tick_period(&self) -> SimDuration {
        match self.cfg.expiry {
            ExpiryPolicy::Adaptive { recompute_period, .. } => recompute_period,
            _ => SimDuration::from_millis(500.0),
        }
    }

    fn jitter(&mut self) -> SimDuration {
        let max = self.cfg.broadcast_jitter.as_secs();
        SimDuration::from_secs(uniform(&mut self.rng, 0.0, max))
    }

    /// Enables (or disables) cache-decision tracing: every insert, lookup,
    /// link purge, eviction, expiry, and `mark_used` refresh is emitted as
    /// a [`DsrEvent::CacheDecision`] command for the driver's cache
    /// forensics recorder. Pure observation — no timers, sends, or RNG
    /// draws are added, so protocol behaviour is identical either way.
    pub fn set_decision_trace(&mut self, on: bool) {
        self.trace_decisions = on;
        self.cache.set_event_log(on);
    }

    fn trace_lookup(
        &self,
        dst: NodeId,
        purpose: CacheHitKind,
        route: &Option<Route>,
        cmds: &mut Vec<DsrCommand>,
    ) {
        if self.trace_decisions {
            cmds.push(DsrCommand::Event {
                event: DsrEvent::CacheDecision {
                    decision: CacheDecision::Lookup { dst, purpose, route: route.clone() },
                },
            });
        }
    }

    fn trace_refresh(&self, route: &Route, cmds: &mut Vec<DsrCommand>) {
        if self.trace_decisions {
            cmds.push(DsrCommand::Event {
                event: DsrEvent::CacheDecision {
                    decision: CacheDecision::Refresh { route: route.clone() },
                },
            });
        }
    }

    fn trace_remove(
        &self,
        link: Link,
        cause: CacheRemovalCause,
        contained: bool,
        cmds: &mut Vec<DsrCommand>,
    ) {
        if self.trace_decisions {
            cmds.push(DsrCommand::Event {
                event: DsrEvent::CacheDecision {
                    decision: CacheDecision::RemoveLink { link, cause, contained },
                },
            });
        }
    }

    /// Drains the cache's internal event log (evictions, expiry prunes)
    /// into decision-trace commands. No-op while tracing is off.
    fn drain_cache_events(&mut self, cmds: &mut Vec<DsrCommand>) {
        if !self.trace_decisions {
            return;
        }
        let mut buf = std::mem::take(&mut self.cache_event_buf);
        self.cache.drain_events(&mut buf);
        for ev in buf.drain(..) {
            let decision = match ev {
                CacheEvent::Evicted { route } => CacheDecision::Evict { route },
                CacheEvent::Expired { route } => CacheDecision::Expire { route },
            };
            cmds.push(DsrCommand::Event { event: DsrEvent::CacheDecision { decision } });
        }
        self.cache_event_buf = buf;
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// Boots the agent's periodic housekeeping; call once at simulation
    /// start.
    pub fn start(&mut self, now: SimTime) -> Vec<DsrCommand> {
        vec![DsrCommand::SetTimer { timer: DsrTimer::Tick, at: now + self.tick_period() }]
    }

    /// The node rebooted after a fault-injected crash (churn): every piece
    /// of volatile protocol state — route cache, negative cache, adaptive
    /// estimator, send buffer, request table, error/gratuitous-reply
    /// suppression windows — is rebuilt from the config, exactly as
    /// [`DsrNode::new`] built it. Buffered packets are surrendered as
    /// `Drop(NodeReset)` commands so the conservation ledger stays
    /// balanced, and the periodic tick is re-armed (the driver cancelled
    /// all timers at crash time).
    ///
    /// The uid counter and the jitter RNG survive the reboot: uids must
    /// stay globally unique across a node's lifetimes (a restarted counter
    /// would re-issue old uids and trip the "originated twice" audit), and
    /// the RNG keeps its named-stream determinism.
    pub fn reboot(&mut self, now: SimTime) -> Vec<DsrCommand> {
        let mut cmds: Vec<DsrCommand> = self
            .send_buffer
            .uids()
            .into_iter()
            .map(|uid| DsrCommand::Drop { uid, reason: DropReason::NodeReset })
            .collect();
        self.cache = Self::build_cache(self.id, &self.cfg);
        // Decision tracing is driver-installed state, not protocol state:
        // it survives the reboot (the rebuilt cache needs its log back on).
        self.cache.set_event_log(self.trace_decisions);
        self.negative = Self::build_negative(&self.cfg);
        self.adaptive = Self::build_adaptive(&self.cfg);
        self.send_buffer = Self::build_send_buffer(&self.cfg);
        self.requests = RequestTable::default();
        self.pending_error = None;
        self.seen_errors.clear();
        self.seen_errors_set.clear();
        self.grat_replies.clear();
        self.signal.clear();
        self.answered_requests.clear();
        cmds.push(DsrCommand::SetTimer { timer: DsrTimer::Tick, at: now + self.tick_period() });
        cmds
    }

    /// The application asks to send `payload_bytes` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is this node or the broadcast address.
    pub fn originate(
        &mut self,
        dst: NodeId,
        payload_bytes: usize,
        seq: u64,
        now: SimTime,
    ) -> Vec<DsrCommand> {
        assert!(dst != self.id && !dst.is_broadcast(), "invalid destination {dst}");
        let mut cmds = Vec::new();
        let pending = PendingData { uid: self.fresh_uid(), dst, seq, payload_bytes, sent_at: now };
        cmds.push(DsrCommand::Event { event: DsrEvent::DataOriginated { uid: pending.uid } });
        let found = self.cache.find(dst, now);
        self.trace_lookup(dst, CacheHitKind::Origination, &found, &mut cmds);
        if let Some(route) = found {
            cmds.push(DsrCommand::Event {
                event: DsrEvent::CacheHit { route: route.clone(), kind: CacheHitKind::Origination },
            });
            self.send_data_on_route(pending, route, 0, now, &mut cmds);
        } else {
            if let Some(evicted) = self.send_buffer.push(pending, now) {
                cmds.push(DsrCommand::Drop {
                    uid: evicted.uid,
                    reason: DropReason::SendBufferFull,
                });
            }
            self.ensure_discovery(dst, now, &mut cmds);
        }
        cmds
    }

    /// The MAC delivered a packet addressed to us (or broadcast).
    pub fn on_receive(&mut self, from: NodeId, packet: Packet, now: SimTime) -> Vec<DsrCommand> {
        let mut cmds = Vec::new();
        match packet {
            Packet::Request(req) => self.handle_request(req, now, &mut cmds),
            Packet::Reply(rep) => self.handle_reply(rep, now, &mut cmds),
            Packet::Error(err) => self.handle_error(err, from, now, &mut cmds),
            Packet::Data(data) => self.handle_data(data, from, now, &mut cmds),
        }
        cmds
    }

    /// The PHY decoded a frame from `from` intact at receive power
    /// `power_w` watts (Preemptive-DSR hook; no-op unless configured).
    ///
    /// On a downward threshold crossing the fading link is purged from
    /// the route cache ahead of the actual break, and the next data
    /// packet routed over it triggers a warning route error back to its
    /// source (Ramesh et al.'s preemptive RERR). A per-neighbor holdoff
    /// keeps a node lingering near the threshold from firing repeatedly.
    pub fn on_signal(&mut self, from: NodeId, power_w: f64, now: SimTime) -> Vec<DsrCommand> {
        let mut cmds = Vec::new();
        let Some(pre) = self.cfg.preemptive else {
            return cmds;
        };
        let state = self.signal.entry(from).or_default();
        let below = power_w < pre.threshold_w;
        let crossed = below && !state.below;
        state.below = below;
        if !crossed {
            return cmds;
        }
        if let Some(last) = state.last_repair {
            if now < last + pre.holdoff {
                return cmds;
            }
        }
        state.last_repair = Some(now);
        state.warn_armed = true;
        // The fading link as data actually traverses it: from -> us.
        let link = Link::new(from, self.id);
        cmds.push(DsrCommand::Event { event: DsrEvent::PreemptiveRepair { link } });
        self.preemptive_purge(link, now, &mut cmds);
        self.preemptive_purge(Link::new(self.id, from), now, &mut cmds);
        cmds
    }

    /// Purges a fading (but not yet broken) link from the cache. Unlike
    /// [`Self::apply_link_break`] this feeds neither the adaptive
    /// estimator (no route died) nor the negative cache (the link still
    /// works; blacklisting it would veto usable routes).
    fn preemptive_purge(&mut self, link: Link, now: SimTime, cmds: &mut Vec<DsrCommand>) {
        let removed = self.cache.remove_link(link, now);
        self.trace_remove(link, CacheRemovalCause::Preemptive, removed.contained, cmds);
        self.emit_failovers(&removed, cmds);
    }

    /// If a preemptive repair fired for `from` and still owes a warning,
    /// send the source of `route` a route error for the fading link so it
    /// refreshes its route before the break happens.
    fn maybe_preemptive_warn(
        &mut self,
        from: NodeId,
        route: &Route,
        now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        if self.cfg.preemptive.is_none() || route.source() == self.id {
            return;
        }
        let Some(state) = self.signal.get_mut(&from) else {
            return;
        };
        if !state.warn_armed {
            return;
        }
        state.warn_armed = false;
        self.originate_route_error_for_route(Link::new(from, self.id), route, now, cmds);
    }

    /// The MAC promiscuously overheard a data-bearing frame addressed to
    /// someone else (`transmitter` is the MAC-level sender).
    pub fn on_snoop(
        &mut self,
        transmitter: NodeId,
        packet: &Packet,
        now: SimTime,
    ) -> Vec<DsrCommand> {
        let mut cmds = Vec::new();
        if !self.cfg.promiscuous {
            return cmds;
        }
        match packet {
            Packet::Data(data) => {
                self.learn_from_route(&data.route, Some(transmitter), now, &mut cmds);
                self.cache.mark_used(&data.route, now);
                self.trace_refresh(&data.route, &mut cmds);
                if self.cfg.gratuitous_replies {
                    self.maybe_gratuitous_reply(data, transmitter, now, &mut cmds);
                }
            }
            Packet::Reply(rep) => {
                self.learn_from_route(&rep.discovered, None, now, &mut cmds);
            }
            Packet::Error(err) => {
                self.apply_link_break(err.broken, CacheRemovalCause::ErrorReceived, now, &mut cmds);
            }
            Packet::Request(_) => {} // requests are broadcast, never snooped
        }
        cmds
    }

    /// Link-layer feedback: the MAC exhausted its retries sending `packet`
    /// to `next_hop`.
    pub fn on_tx_failed(
        &mut self,
        packet: Packet,
        next_hop: NodeId,
        now: SimTime,
    ) -> Vec<DsrCommand> {
        let mut cmds = Vec::new();
        let link = Link::new(self.id, next_hop);
        cmds.push(DsrCommand::Event { event: DsrEvent::LinkBreakDetected { link } });
        self.apply_link_break(link, CacheRemovalCause::MacFeedback, now, &mut cmds);
        match packet {
            Packet::Data(data) => {
                self.originate_route_error(link, Some(&data), now, &mut cmds);
                self.try_salvage(data, now, &mut cmds);
            }
            Packet::Reply(rep) => {
                // Report the break toward the reply's own source route
                // origin, then give the reply up.
                self.originate_route_error_for_route(link, &rep.route, now, &mut cmds);
                cmds.push(DsrCommand::Drop {
                    uid: rep.uid,
                    reason: DropReason::ControlUndeliverable,
                });
            }
            Packet::Error(err) => {
                cmds.push(DsrCommand::Drop {
                    uid: err.uid,
                    reason: DropReason::ControlUndeliverable,
                });
            }
            Packet::Request(req) => {
                // Requests are broadcast; a unicast failure here is
                // impossible, but drop defensively.
                cmds.push(DsrCommand::Drop {
                    uid: req.uid,
                    reason: DropReason::ControlUndeliverable,
                });
            }
        }
        cmds
    }

    /// A timer armed earlier fired.
    pub fn on_timer(&mut self, timer: DsrTimer, now: SimTime) -> Vec<DsrCommand> {
        let mut cmds = Vec::new();
        match timer {
            DsrTimer::Tick => self.tick(now, &mut cmds),
            DsrTimer::RequestTimeout(target) => self.request_timed_out(target, now, &mut cmds),
        }
        cmds
    }

    // ------------------------------------------------------------------
    // Discovery
    // ------------------------------------------------------------------

    fn ensure_discovery(&mut self, target: NodeId, now: SimTime, cmds: &mut Vec<DsrCommand>) {
        if self.requests.discovering(target) {
            return;
        }
        let nonprop = self.cfg.nonpropagating_requests;
        let request_id = self.requests.start(target, nonprop);
        let ttl = if nonprop { 1 } else { FLOOD_TTL };
        self.send_request(target, request_id, ttl, now, cmds);
        let timeout = if nonprop { self.cfg.nonprop_timeout } else { self.cfg.request_period };
        cmds.push(DsrCommand::SetTimer {
            timer: DsrTimer::RequestTimeout(target),
            at: now + timeout,
        });
    }

    fn send_request(
        &mut self,
        target: NodeId,
        request_id: u64,
        ttl: u8,
        _now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        let piggyback = if self.cfg.gratuitous_repair { self.pending_error.take() } else { None };
        let req = RouteRequest {
            uid: self.fresh_uid(),
            origin: self.id,
            target,
            request_id,
            path: vec![self.id],
            ttl,
            piggyback_error: piggyback,
        };
        cmds.push(DsrCommand::Event {
            event: DsrEvent::DiscoveryStarted { target, flood: ttl > 1 },
        });
        cmds.push(DsrCommand::Send {
            packet: Packet::Request(req),
            next_hop: NodeId::BROADCAST,
            jitter: SimDuration::ZERO,
        });
    }

    fn request_timed_out(&mut self, target: NodeId, now: SimTime, cmds: &mut Vec<DsrCommand>) {
        if !self.requests.discovering(target) {
            return;
        }
        if !self.send_buffer.has_packets_for(target) {
            // Nothing waiting anymore: stop discovering.
            self.requests.finish(target);
            return;
        }
        let (request_id, backoff) =
            self.requests.escalate(target, self.cfg.request_period, self.cfg.max_request_period);
        self.send_request(target, request_id, FLOOD_TTL, now, cmds);
        cmds.push(DsrCommand::SetTimer {
            timer: DsrTimer::RequestTimeout(target),
            at: now + backoff,
        });
    }

    fn handle_request(&mut self, mut req: RouteRequest, now: SimTime, cmds: &mut Vec<DsrCommand>) {
        if req.origin == self.id {
            return; // our own flood reflected back
        }
        if let Some(link) = req.piggyback_error {
            // Gratuitous route repair: clean the broken link out before we
            // consider answering from cache.
            self.apply_link_break(link, CacheRemovalCause::ErrorReceived, now, cmds);
        }
        if req.path.contains(&self.id) {
            return; // already forwarded this copy
        }
        // Learn the reverse route back to the origin (801.11 links are
        // bidirectional — RTS/CTS requires it).
        let mut forward_nodes = req.path.clone();
        forward_nodes.push(self.id);
        if let Ok(forward) = Route::new(forward_nodes.clone()) {
            self.insert_route(forward.reversed(), CacheInsertProvenance::Overheard, now, cmds);
        }

        if req.target == self.id {
            // The destination answers every copy of the request, giving the
            // source a supply of alternate routes.
            let discovered = Route::new(forward_nodes).expect("checked loop-free above");
            if self.suppress_duplicate_reply(&req, &discovered, cmds) {
                return;
            }
            self.send_reply(discovered, false, now, cmds);
            return;
        }
        if !self.requests.note_seen(req.origin, req.request_id) {
            return; // duplicate
        }
        if self.cfg.replies_from_cache {
            let found = self.cache.find(req.target, now);
            self.trace_lookup(req.target, CacheHitKind::Reply, &found, cmds);
            if let Some(cached) = found {
                let prefix = Route::new(forward_nodes.clone()).expect("checked loop-free above");
                if let Ok(full) = prefix.join(&cached) {
                    cmds.push(DsrCommand::Event {
                        event: DsrEvent::CacheHit { route: cached, kind: CacheHitKind::Reply },
                    });
                    self.send_reply_from_cache(full, now, cmds);
                    return; // cached reply quenches the flood here
                }
            }
        }
        if req.ttl > 1 {
            req.ttl -= 1;
            req.path.push(self.id);
            req.uid = self.fresh_uid();
            let jitter = self.jitter();
            cmds.push(DsrCommand::Send {
                packet: Packet::Request(req),
                next_hop: NodeId::BROADCAST,
                jitter,
            });
        }
        // TTL exhausted (non-propagating probe): quietly die here.
    }

    /// Non-optimal route suppression (DSR-NORS), reply side: the target
    /// answers the *first* copy of each request unconditionally, but
    /// withholds later copies whose route is more than `stretch` times the
    /// best hop count already answered. Returns `true` when the reply
    /// should be withheld.
    fn suppress_duplicate_reply(
        &mut self,
        req: &RouteRequest,
        discovered: &Route,
        cmds: &mut Vec<DsrCommand>,
    ) -> bool {
        let Some(sup) = self.cfg.suppression else {
            return false;
        };
        let key = (req.origin, req.request_id);
        match self.answered_requests.iter_mut().find(|(k, _)| *k == key) {
            Some((_, best)) => {
                if (discovered.hops() as f64) > sup.stretch * (*best as f64) {
                    if self.trace_decisions {
                        cmds.push(DsrCommand::Event {
                            event: DsrEvent::CacheDecision {
                                decision: CacheDecision::Suppress {
                                    route: discovered.clone(),
                                    action: SuppressedAction::Reply,
                                },
                            },
                        });
                    }
                    return true;
                }
                *best = (*best).min(discovered.hops());
                false
            }
            None => {
                if self.answered_requests.len() >= ANSWERED_REQUEST_CACHE {
                    self.answered_requests.pop_front();
                }
                self.answered_requests.push_back((key, discovered.hops()));
                false
            }
        }
    }

    fn send_reply(
        &mut self,
        discovered: Route,
        from_cache: bool,
        _now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        let reply_route = discovered
            .prefix_through(self.id)
            .expect("replier is on the discovered route")
            .reversed();
        cmds.push(DsrCommand::Event { event: DsrEvent::ReplyOriginated { from_cache } });
        let next_hop = match reply_route.next_hop_after(self.id) {
            Some(h) => h,
            None => {
                // One-node reply route: requester is ourselves (cannot
                // happen — the origin never answers its own request).
                return;
            }
        };
        let rep = RouteReply {
            uid: self.fresh_uid(),
            discovered,
            from_cache,
            route: reply_route,
            hop: 0,
            gratuitous: false,
        };
        let jitter = self.jitter();
        cmds.push(DsrCommand::Send { packet: Packet::Reply(rep), next_hop, jitter });
    }

    fn send_reply_from_cache(&mut self, full: Route, now: SimTime, cmds: &mut Vec<DsrCommand>) {
        self.send_reply(full, true, now, cmds);
    }

    fn handle_reply(&mut self, mut rep: RouteReply, now: SimTime, cmds: &mut Vec<DsrCommand>) {
        // Every node the reply passes through may learn the discovered
        // route segments that involve it.
        self.learn_from_route(&rep.discovered, None, now, cmds);
        let final_recipient = rep.route.destination() == self.id;
        if final_recipient {
            let target = rep.discovered.destination();
            cmds.push(DsrCommand::Event {
                event: DsrEvent::ReplyAccepted { discovered: Some(rep.discovered.clone()) },
            });
            // Well-formed replies discover a route rooted at the requester;
            // anything else (corrupt or misdirected) is still mined for
            // usable segments by the learn_from_route call above.
            if rep.discovered.source() == self.id {
                let provenance = if rep.gratuitous {
                    CacheInsertProvenance::Gratuitous
                } else {
                    CacheInsertProvenance::Reply
                };
                self.insert_route(rep.discovered.clone(), provenance, now, cmds);
            }
            if self.requests.finish(target) {
                cmds.push(DsrCommand::CancelTimer { timer: DsrTimer::RequestTimeout(target) });
            }
            self.flush_send_buffer(now, cmds);
        } else {
            // Forward toward the requester.
            match rep.route.position(self.id) {
                Some(idx) if idx + 1 < rep.route.len() => {
                    rep.hop = idx;
                    let next_hop = rep.route.nodes()[idx + 1];
                    cmds.push(DsrCommand::Send {
                        packet: Packet::Reply(rep),
                        next_hop,
                        jitter: SimDuration::ZERO,
                    });
                }
                _ => {
                    cmds.push(DsrCommand::Drop { uid: rep.uid, reason: DropReason::NotOnRoute });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    fn send_data_on_route(
        &mut self,
        pending: PendingData,
        route: Route,
        salvage_count: u8,
        now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        debug_assert_eq!(route.source(), self.id);
        self.cache.mark_used(&route, now);
        self.trace_refresh(&route, cmds);
        let next_hop = route.nodes()[1];
        let data = DataPacket {
            uid: pending.uid,
            src: self.id,
            dst: pending.dst,
            seq: pending.seq,
            payload_bytes: pending.payload_bytes,
            sent_at: pending.sent_at,
            route,
            hop: 0,
            salvage_count,
        };
        cmds.push(DsrCommand::Send {
            packet: Packet::Data(data),
            next_hop,
            jitter: SimDuration::ZERO,
        });
    }

    fn handle_data(
        &mut self,
        mut data: DataPacket,
        from: NodeId,
        now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        // Preemptive-DSR: a packet arriving over a fading link warns its
        // source before the link actually breaks.
        self.maybe_preemptive_warn(from, &data.route, now, cmds);
        // Forwarding nodes cache the routes they carry and refresh expiry
        // timestamps ("seen in a unicast packet being forwarded").
        self.learn_from_route(&data.route, None, now, cmds);
        self.cache.mark_used(&data.route, now);
        self.trace_refresh(&data.route, cmds);
        if data.dst == self.id {
            cmds.push(DsrCommand::DeliverData { packet: data });
            return;
        }
        let Some(idx) = data.route.position(self.id) else {
            cmds.push(DsrCommand::Drop { uid: data.uid, reason: DropReason::NotOnRoute });
            return;
        };
        data.hop = idx;
        // Negative cache: refuse to forward along a recently broken link.
        if let Some(neg) = &self.negative {
            let remaining = data.route.links().skip(idx);
            if let Some(bad) = neg.first_blacklisted(remaining, now) {
                cmds.push(DsrCommand::Drop { uid: data.uid, reason: DropReason::NegativeCacheHit });
                self.trace_remove(bad, CacheRemovalCause::NegativeVeto, false, cmds);
                self.originate_route_error(bad, Some(&data), now, cmds);
                return;
            }
        }
        self.cache.mark_forwarded(&data.route);
        let next_hop = data.route.nodes()[idx + 1];
        cmds.push(DsrCommand::Send {
            packet: Packet::Data(data),
            next_hop,
            jitter: SimDuration::ZERO,
        });
    }

    fn try_salvage(&mut self, mut data: DataPacket, now: SimTime, cmds: &mut Vec<DsrCommand>) {
        let at_source = data.src == self.id;
        if self.cfg.salvaging {
            if data.salvage_count >= self.cfg.max_salvage_count {
                cmds.push(DsrCommand::Drop { uid: data.uid, reason: DropReason::SalvageLimit });
                return;
            }
            let found = self.cache.find(data.dst, now);
            self.trace_lookup(data.dst, CacheHitKind::Salvage, &found, cmds);
            if let Some(alt) = found {
                cmds.push(DsrCommand::Event {
                    event: DsrEvent::CacheHit { route: alt.clone(), kind: CacheHitKind::Salvage },
                });
                self.cache.mark_used(&alt, now);
                self.trace_refresh(&alt, cmds);
                let next_hop = alt.nodes()[1];
                data.route = alt;
                data.hop = 0;
                data.salvage_count += 1;
                cmds.push(DsrCommand::Send {
                    packet: Packet::Data(data),
                    next_hop,
                    jitter: SimDuration::ZERO,
                });
                return;
            }
        }
        if at_source {
            // Sources re-buffer and rediscover; intermediates must drop
            // (the paper: "a packet is dropped at the intermediate node if
            // [...] there is no alternate route in the local cache").
            let pending = PendingData {
                uid: data.uid,
                dst: data.dst,
                seq: data.seq,
                payload_bytes: data.payload_bytes,
                sent_at: data.sent_at,
            };
            if let Some(evicted) = self.send_buffer.push(pending, now) {
                cmds.push(DsrCommand::Drop {
                    uid: evicted.uid,
                    reason: DropReason::SendBufferFull,
                });
            }
            self.ensure_discovery(data.dst, now, cmds);
        } else {
            cmds.push(DsrCommand::Drop { uid: data.uid, reason: DropReason::NoRouteToSalvage });
        }
    }

    // ------------------------------------------------------------------
    // Route errors
    // ------------------------------------------------------------------

    /// Originates the route error for `link`, for a failed data packet
    /// (`data`) or a negative-cache refusal.
    fn originate_route_error(
        &mut self,
        link: Link,
        data: Option<&DataPacket>,
        now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        if self.cfg.wider_error_notification {
            let uid = self.fresh_uid();
            self.note_error_seen(uid);
            let err = RouteErrorPkt {
                uid,
                broken: link,
                detector: self.id,
                delivery: ErrorDelivery::Broadcast,
            };
            cmds.push(DsrCommand::Event { event: DsrEvent::RouteErrorSent { wider: true } });
            let jitter = self.jitter();
            cmds.push(DsrCommand::Send {
                packet: Packet::Error(err),
                next_hop: NodeId::BROADCAST,
                jitter,
            });
        } else if let Some(data) = data {
            self.originate_route_error_for_route(link, &data.route, now, cmds);
        }
    }

    /// Base-DSR unicast error: notify the node that placed this source
    /// route, along the reversed traversed prefix.
    fn originate_route_error_for_route(
        &mut self,
        link: Link,
        route: &Route,
        now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        if self.cfg.wider_error_notification {
            self.originate_route_error(link, None, now, cmds);
            return;
        }
        let source = route.source();
        if source == self.id {
            // We *are* the source: route maintenance is local; remember the
            // break for gratuitous repair.
            self.pending_error = Some(link);
            return;
        }
        let Some(back) = route.prefix_through(self.id).map(|p| p.reversed()) else {
            return;
        };
        let Some(next_hop) = back.next_hop_after(self.id) else {
            return;
        };
        let err = RouteErrorPkt {
            uid: self.fresh_uid(),
            broken: link,
            detector: self.id,
            delivery: ErrorDelivery::Unicast { to: source, route: back, hop: 0 },
        };
        cmds.push(DsrCommand::Event { event: DsrEvent::RouteErrorSent { wider: false } });
        cmds.push(DsrCommand::Send {
            packet: Packet::Error(err),
            next_hop,
            jitter: SimDuration::ZERO,
        });
    }

    fn handle_error(
        &mut self,
        err: RouteErrorPkt,
        _from: NodeId,
        now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        match err.delivery {
            ErrorDelivery::Unicast { to, ref route, .. } => {
                self.apply_link_break(err.broken, CacheRemovalCause::ErrorReceived, now, cmds);
                if to == self.id {
                    // We are the notified source: remember the break for
                    // gratuitous route repair.
                    self.pending_error = Some(err.broken);
                } else if let Some(idx) = route.position(self.id) {
                    if idx + 1 < route.len() {
                        let next_hop = route.nodes()[idx + 1];
                        let mut fwd = err.clone();
                        if let ErrorDelivery::Unicast { hop, .. } = &mut fwd.delivery {
                            *hop = idx;
                        }
                        cmds.push(DsrCommand::Send {
                            packet: Packet::Error(fwd),
                            next_hop,
                            jitter: SimDuration::ZERO,
                        });
                    }
                }
            }
            ErrorDelivery::Broadcast => {
                if self.have_seen_error(err.uid) {
                    return;
                }
                self.note_error_seen(err.uid);
                let removed = self.cache.remove_link(err.broken, now);
                self.trace_remove(
                    err.broken,
                    CacheRemovalCause::WiderError,
                    removed.contained,
                    cmds,
                );
                for lifetime in &removed.route_lifetimes {
                    self.adaptive.observe_break(*lifetime, now);
                }
                self.emit_failovers(&removed, cmds);
                if let Some(neg) = &mut self.negative {
                    neg.insert(err.broken, now);
                }
                if removed.contained {
                    self.pending_error = Some(err.broken);
                }
                // The re-broadcast predicate (the paper's default: cached
                // the link AND used such a route in packets we forwarded).
                let rebroadcast = match self.cfg.wider_error_rebroadcast {
                    WiderErrorRebroadcast::CachedAndUsed => {
                        removed.contained && removed.was_used_for_forwarding
                    }
                    WiderErrorRebroadcast::CachedOnly => removed.contained,
                    WiderErrorRebroadcast::Flood => true,
                };
                if rebroadcast {
                    cmds.push(DsrCommand::Event { event: DsrEvent::RouteErrorRebroadcast });
                    let jitter = self.jitter();
                    cmds.push(DsrCommand::Send {
                        packet: Packet::Error(err),
                        next_hop: NodeId::BROADCAST,
                        jitter,
                    });
                }
            }
        }
    }

    fn have_seen_error(&self, uid: u64) -> bool {
        self.seen_errors_set.contains(&uid)
    }

    fn note_error_seen(&mut self, uid: u64) {
        if !self.seen_errors_set.insert(uid) {
            return;
        }
        if self.seen_errors.len() >= SEEN_ERROR_CACHE {
            if let Some(evicted) = self.seen_errors.pop_front() {
                self.seen_errors_set.remove(&evicted);
            }
        }
        self.seen_errors.push_back(uid);
    }

    /// Common bookkeeping when a link is learned broken (feedback, error
    /// packet, or piggyback): purge it from the route cache, blacklist it,
    /// and feed the adaptive-timeout estimator.
    fn apply_link_break(
        &mut self,
        link: Link,
        cause: CacheRemovalCause,
        now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        let removed = self.cache.remove_link(link, now);
        self.trace_remove(link, cause, removed.contained, cmds);
        for lifetime in &removed.route_lifetimes {
            self.adaptive.observe_break(*lifetime, now);
        }
        self.emit_failovers(&removed, cmds);
        if let Some(neg) = &mut self.negative {
            neg.insert(link, now);
        }
    }

    /// Reports every destination that lost a route to the purged link but
    /// still has a cached alternate (multipath caching): an always-on
    /// protocol event per destination, plus a traced decision carrying the
    /// surviving route when decision tracing is enabled.
    fn emit_failovers(&self, removed: &RemovedLink, cmds: &mut Vec<DsrCommand>) {
        for (dst, route) in &removed.failovers {
            cmds.push(DsrCommand::Event { event: DsrEvent::Failover { dst: *dst } });
            if self.trace_decisions {
                cmds.push(DsrCommand::Event {
                    event: DsrEvent::CacheDecision {
                        decision: CacheDecision::Failover { dst: *dst, route: route.clone() },
                    },
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Cache learning
    // ------------------------------------------------------------------

    /// Caches whatever of `route` is usable from this node: the suffix
    /// from us onward, the reversed prefix back to the route's source, or —
    /// when we are not on the route but overheard `transmitter` — routes
    /// through the transmitter.
    fn learn_from_route(
        &mut self,
        route: &Route,
        transmitter: Option<NodeId>,
        now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        if route.contains(self.id) {
            if let Some(sfx) = route.suffix_from(self.id) {
                self.insert_route(sfx, CacheInsertProvenance::Overheard, now, cmds);
            }
            if let Some(pfx) = route.prefix_through(self.id) {
                self.insert_route(pfx.reversed(), CacheInsertProvenance::Overheard, now, cmds);
            }
        } else if let Some(tx) = transmitter {
            // We overheard `tx` transmitting: the link self->tx exists.
            if let Some(pos) = route.position(tx) {
                let mut via_fwd = vec![self.id];
                via_fwd.extend_from_slice(&route.nodes()[pos..]);
                if let Ok(r) = Route::new(via_fwd) {
                    self.insert_route(r, CacheInsertProvenance::Overheard, now, cmds);
                }
                let mut via_back = vec![self.id];
                via_back.extend(route.nodes()[..=pos].iter().rev());
                if let Ok(r) = Route::new(via_back) {
                    self.insert_route(r, CacheInsertProvenance::Overheard, now, cmds);
                }
            }
        }
    }

    /// Inserts `route` into the path cache, honoring negative-cache mutual
    /// exclusion (the route is truncated before any blacklisted link), and
    /// flushes any send-buffered packets the new route can serve.
    fn insert_route(
        &mut self,
        route: Route,
        provenance: CacheInsertProvenance,
        now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        let mut vetoed: Option<Link> = None;
        let filtered = match &self.negative {
            Some(neg) => {
                let mut cut = route.len();
                for (i, link) in route.links().enumerate() {
                    if neg.contains(link, now) {
                        vetoed = Some(link);
                        cut = i + 1;
                        break;
                    }
                }
                if cut >= route.len() {
                    route
                } else if cut >= 2 {
                    Route::new(route.nodes()[..cut].to_vec()).expect("prefix of loop-free route")
                } else {
                    if let Some(link) = vetoed {
                        self.trace_remove(link, CacheRemovalCause::NegativeVeto, false, cmds);
                    }
                    return;
                }
            }
            None => route,
        };
        if let Some(link) = vetoed {
            self.trace_remove(link, CacheRemovalCause::NegativeVeto, false, cmds);
        }
        if filtered.hops() == 0 {
            return;
        }
        // Non-optimal route suppression (DSR-NORS), insert side: veto
        // routes more than `stretch` times the best cached path to the
        // same destination. The `find` is a pure read (no trace row — it
        // is bookkeeping, not a routing decision).
        if let Some(sup) = self.cfg.suppression {
            if let Some(best) = self.cache.find(filtered.destination(), now) {
                if (filtered.hops() as f64) > sup.stretch * (best.hops() as f64) {
                    cmds.push(DsrCommand::Event { event: DsrEvent::SuppressedInsert });
                    if self.trace_decisions {
                        cmds.push(DsrCommand::Event {
                            event: DsrEvent::CacheDecision {
                                decision: CacheDecision::Suppress {
                                    route: filtered,
                                    action: SuppressedAction::Insert,
                                },
                            },
                        });
                    }
                    return;
                }
            }
        }
        // Clone only under tracing: the off path moves the route into the
        // cache exactly as before.
        let traced = if self.trace_decisions { Some(filtered.clone()) } else { None };
        let changed = self.cache.insert(filtered, now);
        if let Some(route) = traced {
            cmds.push(DsrCommand::Event {
                event: DsrEvent::CacheDecision {
                    decision: CacheDecision::Insert { route, provenance, changed },
                },
            });
        }
        // Inserting may have evicted under capacity pressure.
        self.drain_cache_events(cmds);
        if !self.send_buffer.is_empty() {
            self.flush_send_buffer(now, cmds);
        }
    }

    /// Sends every buffered packet whose destination is now routable.
    fn flush_send_buffer(&mut self, now: SimTime, cmds: &mut Vec<DsrCommand>) {
        let routable: Vec<NodeId> = self
            .send_buffer
            .destinations()
            .into_iter()
            .filter(|&dst| self.cache.find(dst, now).is_some())
            .collect();
        for dst in routable {
            let packets = self.send_buffer.take_for(dst);
            for pending in packets {
                // The routable pre-screen above is untraced by design: only
                // the per-packet find that actually commits a route to use
                // is a decision worth a trace row.
                let found = self.cache.find(dst, now);
                self.trace_lookup(dst, CacheHitKind::Origination, &found, cmds);
                if let Some(route) = found {
                    self.send_data_on_route(pending, route, 0, now, cmds);
                } else {
                    // Route vanished mid-flush (cannot happen today; be
                    // safe and re-buffer).
                    let _ = self.send_buffer.push(pending, now);
                }
            }
            if self.requests.finish(dst) {
                cmds.push(DsrCommand::CancelTimer { timer: DsrTimer::RequestTimeout(dst) });
            }
        }
    }

    // ------------------------------------------------------------------
    // Gratuitous replies
    // ------------------------------------------------------------------

    fn maybe_gratuitous_reply(
        &mut self,
        data: &DataPacket,
        transmitter: NodeId,
        now: SimTime,
        cmds: &mut Vec<DsrCommand>,
    ) {
        let route = &data.route;
        let (Some(i), Some(j)) = (route.position(transmitter), route.position(self.id)) else {
            return;
        };
        if j <= i + 1 {
            return; // no shortcut available
        }
        let flow = (route.source(), route.destination());
        self.grat_replies.retain(|&(_, at)| at + GRAT_REPLY_HOLDOFF > now);
        if self.grat_replies.iter().any(|&(f, _)| f == flow) {
            return; // recently advertised for this flow
        }
        if self.grat_replies.len() >= GRAT_REPLY_CACHE {
            self.grat_replies.pop_front();
        }
        self.grat_replies.push_back((flow, now));

        // Shortened route: source .. transmitter, then directly us, then
        // the rest from our position.
        let mut nodes = route.nodes()[..=i].to_vec();
        nodes.extend_from_slice(&route.nodes()[j..]);
        let Ok(shortened) = Route::new(nodes) else {
            return;
        };
        // Reply route from us back to the source via the transmitter.
        let mut back = vec![self.id];
        back.extend(route.nodes()[..=i].iter().rev());
        let Ok(reply_route) = Route::new(back) else {
            return;
        };
        let Some(next_hop) = reply_route.next_hop_after(self.id) else {
            return;
        };
        cmds.push(DsrCommand::Event { event: DsrEvent::ReplyOriginated { from_cache: true } });
        let rep = RouteReply {
            uid: self.fresh_uid(),
            discovered: shortened,
            from_cache: true,
            route: reply_route,
            hop: 0,
            gratuitous: true,
        };
        let jitter = self.jitter();
        cmds.push(DsrCommand::Send { packet: Packet::Reply(rep), next_hop, jitter });
    }

    // ------------------------------------------------------------------
    // Housekeeping
    // ------------------------------------------------------------------

    fn tick(&mut self, now: SimTime, cmds: &mut Vec<DsrCommand>) {
        cmds.push(DsrCommand::SetTimer { timer: DsrTimer::Tick, at: now + self.tick_period() });
        for expired in self.send_buffer.purge_expired(now) {
            cmds.push(DsrCommand::Drop { uid: expired.uid, reason: DropReason::SendBufferTimeout });
        }
        if let Some(neg) = &mut self.negative {
            neg.purge(now);
        }
        match self.cfg.expiry {
            ExpiryPolicy::None => {}
            ExpiryPolicy::Static { timeout } => {
                self.cache.expire(now, timeout);
                self.drain_cache_events(cmds);
            }
            ExpiryPolicy::Adaptive { quiet_term, .. } => {
                let timeout = self.adaptive.timeout_with(now, quiet_term);
                self.cache.expire(now, timeout);
                // Keep read-time expiry in lock-step with the sweep's
                // freshly recomputed timeout.
                self.cache.set_read_expiry(Some(timeout));
                self.drain_cache_events(cmds);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use sim_core::RngFactory;

    use super::*;
    use crate::config::DsrConfig;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn route(ids: &[u16]) -> Route {
        Route::new(ids.iter().map(|&i| n(i)).collect()).expect("valid route")
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn agent(id: u16, cfg: DsrConfig) -> DsrNode {
        DsrNode::new(n(id), cfg, RngFactory::new(1).stream("agent-test", u64::from(id)))
    }

    fn data_on(route_ids: &[u16], uid: u64) -> DataPacket {
        let r = route(route_ids);
        DataPacket {
            uid,
            src: r.source(),
            dst: r.destination(),
            seq: 0,
            payload_bytes: 512,
            sent_at: SimTime::ZERO,
            route: r,
            hop: 0,
            salvage_count: 0,
        }
    }

    fn count_event(cmds: &[DsrCommand], pred: impl Fn(&DsrEvent) -> bool) -> usize {
        cmds.iter().filter(|c| matches!(c, DsrCommand::Event { event } if pred(event))).count()
    }

    #[test]
    fn preemptive_crossing_purges_fading_link_and_warns_source() {
        let mut a = agent(1, DsrConfig::preemptive());
        let threshold = a.cfg.preemptive.expect("configured").threshold_w;
        // Forwarding a packet on 0->1->2 caches [1,2] and [1,0].
        let cmds = a.on_receive(n(0), Packet::Data(data_on(&[0, 1, 2], 1)), t(0.0));
        assert_eq!(count_event(&cmds, |e| matches!(e, DsrEvent::PreemptiveRepair { .. })), 0);
        assert!(a.cache().contains_link(Link::new(n(1), n(0))));

        // Healthy signal: nothing happens.
        let cmds = a.on_signal(n(0), threshold * 2.0, t(1.0));
        assert!(cmds.is_empty());
        // Downward crossing: repair event, both directions purged.
        let cmds = a.on_signal(n(0), threshold / 2.0, t(2.0));
        assert_eq!(count_event(&cmds, |e| matches!(e, DsrEvent::PreemptiveRepair { .. })), 1);
        assert!(!a.cache().contains_link(Link::new(n(1), n(0))));
        assert!(a.cache().contains_link(Link::new(n(1), n(2))), "healthy link kept");

        // The next packet over the fading link warns its source.
        let cmds = a.on_receive(n(0), Packet::Data(data_on(&[0, 1, 2], 2)), t(2.5));
        assert_eq!(
            count_event(&cmds, |e| matches!(e, DsrEvent::RouteErrorSent { wider: false })),
            1,
            "preemptive warning RERR sent to the source"
        );
        // The warning is one-shot per crossing.
        let cmds = a.on_receive(n(0), Packet::Data(data_on(&[0, 1, 2], 3)), t(2.6));
        assert_eq!(count_event(&cmds, |e| matches!(e, DsrEvent::RouteErrorSent { .. })), 0);
    }

    #[test]
    fn preemptive_holdoff_suppresses_rapid_refiring() {
        let mut a = agent(1, DsrConfig::preemptive());
        let pre = a.cfg.preemptive.expect("configured");
        let cmds = a.on_signal(n(0), pre.threshold_w / 2.0, t(1.0));
        assert_eq!(count_event(&cmds, |e| matches!(e, DsrEvent::PreemptiveRepair { .. })), 1);
        // Recover, then cross again inside the holdoff window: no repair.
        assert!(a.on_signal(n(0), pre.threshold_w * 2.0, t(1.1)).is_empty());
        let cmds = a.on_signal(n(0), pre.threshold_w / 2.0, t(1.2));
        assert_eq!(count_event(&cmds, |e| matches!(e, DsrEvent::PreemptiveRepair { .. })), 0);
        // After the holdoff elapses the same pattern fires again.
        assert!(a.on_signal(n(0), pre.threshold_w * 2.0, t(1.3)).is_empty());
        let later = t(1.0) + pre.holdoff + SimDuration::from_secs(0.1);
        let cmds = a.on_signal(n(0), pre.threshold_w / 2.0, later);
        assert_eq!(count_event(&cmds, |e| matches!(e, DsrEvent::PreemptiveRepair { .. })), 1);
    }

    #[test]
    fn suppression_withholds_stretch_worse_duplicate_replies() {
        let mut a = agent(5, DsrConfig::suppression());
        let req = |path: &[u16], uid| RouteRequest {
            uid,
            origin: n(0),
            target: n(5),
            request_id: 1,
            path: path.iter().map(|&i| n(i)).collect(),
            ttl: 8,
            piggyback_error: None,
        };
        let replies = |cmds: &[DsrCommand]| {
            cmds.iter()
                .filter(|c| matches!(c, DsrCommand::Send { packet: Packet::Reply(_), .. }))
                .count()
        };
        // First copy (1 hop) always answered.
        let cmds = a.on_receive(n(0), Packet::Request(req(&[0], 1)), t(0.0));
        assert_eq!(replies(&cmds), 1);
        // 3-hop duplicate: 3 > 1.5 * 1, withheld.
        let cmds = a.on_receive(n(4), Packet::Request(req(&[0, 2, 4], 2)), t(0.1));
        assert_eq!(replies(&cmds), 0, "stretch-worse duplicate suppressed");
        // A different request id is a fresh discovery: answered again.
        let mut other = req(&[0, 2, 4], 3);
        other.request_id = 2;
        let cmds = a.on_receive(n(4), Packet::Request(other), t(0.2));
        assert_eq!(replies(&cmds), 1);
    }

    #[test]
    fn suppression_vetoes_stretch_worse_cache_inserts() {
        let mut a = agent(1, DsrConfig::suppression());
        // Forwarding on 0->1->2 caches the 1-hop route [1,2].
        let cmds = a.on_receive(n(0), Packet::Data(data_on(&[0, 1, 2], 1)), t(0.0));
        assert_eq!(count_event(&cmds, |e| matches!(e, DsrEvent::SuppressedInsert)), 0);
        // A 3-hop detour to the same destination is vetoed (3 > 1.5 * 1).
        let cmds = a.on_receive(n(9), Packet::Data(data_on(&[9, 1, 7, 8, 2], 2)), t(0.1));
        assert!(count_event(&cmds, |e| matches!(e, DsrEvent::SuppressedInsert)) >= 1);
        assert!(!a.cache().contains_link(Link::new(n(7), n(8))), "detour not cached");
        let best = a.cache().find(n(2), t(0.1)).expect("short route kept");
        assert_eq!(best.hops(), 1);
    }

    #[test]
    fn multipath_failover_fires_without_new_discovery() {
        let mut a = agent(0, DsrConfig::multipath());
        let reply = |discovered: Route, uid| RouteReply {
            uid,
            route: discovered.prefix_through(n(0)).map(|p| p.reversed()).unwrap_or_else(|| {
                Route::new(vec![discovered.nodes()[1], n(0)]).expect("reply route")
            }),
            discovered,
            from_cache: false,
            hop: 0,
            gratuitous: false,
        };
        // Two link-disjoint routes to 3 arrive via replies.
        a.on_receive(n(1), Packet::Reply(reply(route(&[0, 1, 3]), 1)), t(0.0));
        a.on_receive(n(2), Packet::Reply(reply(route(&[0, 2, 3]), 2)), t(0.1));
        assert!(a.cache().contains_link(Link::new(n(1), n(3))));
        assert!(a.cache().contains_link(Link::new(n(2), n(3))));

        // Primary breaks: the agent fails over to the cached alternate.
        let cmds = a.on_tx_failed(Packet::Data(data_on(&[0, 1, 3], 9)), n(1), t(1.0));
        assert_eq!(
            count_event(&cmds, |e| matches!(e, DsrEvent::Failover { dst } if *dst == n(3))),
            1
        );
        let survivor = a.cache().find(n(3), t(1.0)).expect("alternate survives");
        assert_eq!(survivor, route(&[0, 2, 3]));
    }

    #[test]
    fn single_path_config_never_emits_failover() {
        let mut a = agent(0, DsrConfig::base());
        let reply = |discovered: Route, uid| RouteReply {
            uid,
            route: discovered.prefix_through(n(0)).map(|p| p.reversed()).expect("on route"),
            discovered,
            from_cache: false,
            hop: 0,
            gratuitous: false,
        };
        a.on_receive(n(1), Packet::Reply(reply(route(&[0, 1, 3]), 1)), t(0.0));
        a.on_receive(n(2), Packet::Reply(reply(route(&[0, 2, 3]), 2)), t(0.1));
        let cmds = a.on_tx_failed(Packet::Data(data_on(&[0, 1, 3], 9)), n(1), t(1.0));
        assert_eq!(count_event(&cmds, |e| matches!(e, DsrEvent::Failover { .. })), 0);
    }

    #[test]
    fn reboot_clears_preemptive_and_suppression_state() {
        let mut a = agent(1, DsrConfig::preemptive());
        let threshold = a.cfg.preemptive.expect("configured").threshold_w;
        let cmds = a.on_signal(n(0), threshold / 2.0, t(1.0));
        assert_eq!(count_event(&cmds, |e| matches!(e, DsrEvent::PreemptiveRepair { .. })), 1);
        a.reboot(t(2.0));
        assert!(a.signal.is_empty(), "per-neighbor signal state is volatile");
        assert!(a.answered_requests.is_empty());
        // Fresh state: the same crossing fires again immediately.
        let cmds = a.on_signal(n(0), threshold / 2.0, t(2.1));
        assert_eq!(count_event(&cmds, |e| matches!(e, DsrEvent::PreemptiveRepair { .. })), 1);
    }
}
