//! Dynamic Source Routing with configurable route-caching strategies.
//!
//! This crate is the primary contribution of the reproduction of
//! *Marina & Das, "Performance of Route Caching Strategies in Dynamic
//! Source Routing" (ICDCS 2001)*: a full DSR implementation whose cache
//! behaviour is controlled by [`DsrConfig`] —
//!
//! - **base DSR** with the four standard optimizations (replies from
//!   cache, salvaging, gratuitous route repair, promiscuous listening,
//!   non-propagating route requests);
//! - **wider error notification** — broadcast route errors with
//!   conditional re-broadcast;
//! - **timer-based route expiry** — static or adaptive per-node timeout
//!   selection;
//! - **negative caches** — a blacklist of recently broken links, mutually
//!   exclusive with the route cache;
//! - **preemptive repair** — receive-power-triggered early route errors
//!   before a fading link actually breaks;
//! - **non-optimal route suppression** — cache inserts and duplicate
//!   route replies vetoed beyond a stretch factor of the best known path;
//! - **multipath caching** — up to `k` link-disjoint paths per
//!   destination with failover on route error instead of rediscovery.
//!
//! The protocol engine is [`DsrNode`]; supporting structures ([`PathCache`],
//! [`NegativeCache`], [`AdaptiveTimeout`], [`SendBuffer`], [`RequestTable`])
//! are public for inspection, testing, and the benchmark ablations.

pub mod adaptive;
pub mod agent;
pub mod cache;
pub mod config;
pub mod request_table;
pub mod send_buffer;

pub use adaptive::AdaptiveTimeout;
pub use agent::{DsrCommand, DsrEvent, DsrNode, DsrTimer};
pub use cache::link_cache::LinkCache;
pub use cache::negative::NegativeCache;
pub use cache::path_cache::{PathCache, PathEntry, RemovedLink};
pub use cache::{CacheEvent, RouteCache};
pub use config::{
    CacheOrganization, DsrConfig, ExpiryPolicy, MultipathConfig, NegativeCacheConfig,
    PreemptiveConfig, SuppressionConfig, WiderErrorRebroadcast,
};
pub use packet::{CacheHitKind, DropReason};
pub use request_table::{DiscoveryPhase, RequestTable};
pub use send_buffer::{PendingData, SendBuffer};
