//! The link-cache organization (ablation).
//!
//! Hu & Johnson's alternative to the path cache (discussed in the paper's
//! related work): instead of whole paths, the cache stores individual
//! directed links as a graph, and answers route queries by shortest-path
//! search. A link cache can synthesize routes no single packet ever
//! carried — more answers per cached byte, but each stale link poisons
//! *every* route through it, which is exactly the trade-off the paper's
//! related-work section contrasts with the path cache. The
//! `ablation_cache_org` experiment measures this.

use std::collections::{HashMap, VecDeque};

use packet::{Link, Route};
use sim_core::{NodeId, SimDuration, SimTime};

use crate::cache::path_cache::RemovedLink;
use crate::cache::RouteCache;

#[derive(Debug, Clone, Copy)]
struct LinkData {
    added_at: SimTime,
    last_used: SimTime,
    used_for_forwarding: bool,
}

/// A bounded graph of directed links rooted at one node.
///
/// # Example
///
/// ```
/// use dsr::cache::{LinkCache, RouteCache};
/// use packet::Route;
/// use sim_core::{NodeId, SimTime};
///
/// let n = |i| NodeId::new(i);
/// let mut cache = LinkCache::new(n(0), 64);
/// let now = SimTime::ZERO;
/// cache.insert(Route::new(vec![n(0), n(1), n(2)]).unwrap(), now);
/// cache.insert(Route::new(vec![n(1), n(3)]).unwrap(), now);
/// // The link cache synthesizes 0-1-3 even though no packet carried it:
/// assert_eq!(cache.find(n(3), now).unwrap().hops(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct LinkCache {
    owner: NodeId,
    capacity: usize,
    links: HashMap<Link, LinkData>,
}

impl LinkCache {
    /// Creates an empty link cache holding at most `capacity` links.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LinkCache { owner, capacity, links: HashMap::new() }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Number of cached links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    fn evict_lru(&mut self) {
        if let Some((&link, _)) = self.links.iter().min_by_key(|(_, d)| d.last_used) {
            self.links.remove(&link);
        }
    }

    /// Breadth-first shortest path (in hops) from the owner to `dst` over
    /// the cached link graph. Neighbor exploration is ordered by node id
    /// for determinism.
    fn shortest_path(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        if dst == self.owner {
            return None;
        }
        let mut adjacency: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for link in self.links.keys() {
            adjacency.entry(link.from).or_default().push(link.to);
        }
        for nexts in adjacency.values_mut() {
            nexts.sort_unstable();
        }
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut queue = VecDeque::from([self.owner]);
        while let Some(node) = queue.pop_front() {
            if node == dst {
                let mut path = vec![dst];
                let mut cur = dst;
                while let Some(&p) = prev.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            if let Some(nexts) = adjacency.get(&node) {
                for &next in nexts {
                    if next != self.owner && !prev.contains_key(&next) {
                        prev.insert(next, node);
                        queue.push_back(next);
                    }
                }
            }
        }
        None
    }
}

impl RouteCache for LinkCache {
    fn insert(&mut self, route: Route, now: SimTime) -> bool {
        let mut changed = false;
        for link in route.links() {
            match self.links.get_mut(&link) {
                Some(data) => {
                    data.added_at = now;
                    data.last_used = now;
                }
                None => {
                    if self.links.len() >= self.capacity {
                        self.evict_lru();
                    }
                    self.links.insert(
                        link,
                        LinkData { added_at: now, last_used: now, used_for_forwarding: false },
                    );
                    changed = true;
                }
            }
        }
        changed
    }

    fn find(&self, dst: NodeId, _now: SimTime) -> Option<Route> {
        let path = self.shortest_path(dst)?;
        Route::new(path).ok()
    }

    fn remove_link(&mut self, link: Link, now: SimTime) -> RemovedLink {
        match self.links.remove(&link) {
            Some(data) => RemovedLink {
                contained: true,
                was_used_for_forwarding: data.used_for_forwarding,
                // A link cache has no per-route lifetime; the link's own age
                // is the natural analogue for the adaptive estimator.
                route_lifetimes: vec![now.saturating_since(data.added_at)],
                // Multipath failover is a path-cache feature.
                failovers: Vec::new(),
            },
            None => RemovedLink::default(),
        }
    }

    fn mark_used(&mut self, seen: &Route, now: SimTime) {
        for link in seen.links() {
            if let Some(data) = self.links.get_mut(&link) {
                data.last_used = now;
            }
        }
    }

    fn mark_forwarded(&mut self, seen: &Route) {
        for link in seen.links() {
            if let Some(data) = self.links.get_mut(&link) {
                data.used_for_forwarding = true;
            }
        }
    }

    fn expire(&mut self, now: SimTime, timeout: SimDuration) -> usize {
        let before = self.links.len();
        self.links.retain(|_, data| data.last_used + timeout >= now);
        before - self.links.len()
    }

    fn contains_link(&self, link: Link) -> bool {
        self.links.contains_key(&link)
    }

    fn len(&self) -> usize {
        self.links.len()
    }

    fn snapshot_routes(&self) -> Vec<Route> {
        // One two-node route per cached link; a link is "valid" exactly
        // when its endpoints are in range, which is what the oracle checks.
        self.links.keys().filter_map(|link| Route::new(vec![link.from, link.to]).ok()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn route(ids: &[u16]) -> Route {
        Route::new(ids.iter().map(|&i| n(i)).collect()).expect("valid route")
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn synthesizes_routes_across_packets() {
        let mut c = LinkCache::new(n(0), 64);
        c.insert(route(&[0, 1, 2]), t(0.0));
        c.insert(route(&[2, 3]), t(0.0));
        let r = c.find(n(3), t(0.0)).expect("synthesized route");
        assert_eq!(r, route(&[0, 1, 2, 3]));
    }

    #[test]
    fn finds_shortest_in_hops() {
        let mut c = LinkCache::new(n(0), 64);
        c.insert(route(&[0, 1, 2, 3]), t(0.0));
        c.insert(route(&[0, 4, 3]), t(0.0));
        assert_eq!(c.find(n(3), t(0.0)).expect("route").hops(), 2);
    }

    #[test]
    fn removing_one_link_poisons_all_routes_through_it() {
        let mut c = LinkCache::new(n(0), 64);
        c.insert(route(&[0, 1, 2]), t(0.0));
        c.insert(route(&[5, 1, 2]), t(0.0)); // another route over 1->2
        let out = c.remove_link(Link::new(n(1), n(2)), t(4.0));
        assert!(out.contained);
        assert_eq!(out.route_lifetimes, vec![SimDuration::from_secs(4.0)]);
        assert!(c.find(n(2), t(4.0)).is_none(), "no path to 2 without 1->2");
        assert!(c.find(n(1), t(4.0)).is_some());
    }

    #[test]
    fn expiry_drops_stale_links_only() {
        let mut c = LinkCache::new(n(0), 64);
        c.insert(route(&[0, 1, 2]), t(0.0));
        c.mark_used(&route(&[0, 1]), t(9.0));
        assert_eq!(c.expire(t(10.0), SimDuration::from_secs(5.0)), 1);
        assert!(c.contains_link(Link::new(n(0), n(1))));
        assert!(!c.contains_link(Link::new(n(1), n(2))));
    }

    #[test]
    fn forwarding_flag_round_trips() {
        let mut c = LinkCache::new(n(0), 64);
        c.insert(route(&[0, 1, 2]), t(0.0));
        c.mark_forwarded(&route(&[9, 1, 2]));
        let out = c.remove_link(Link::new(n(1), n(2)), t(1.0));
        assert!(out.was_used_for_forwarding);
    }

    #[test]
    fn capacity_evicts_lru_link() {
        let mut c = LinkCache::new(n(0), 2);
        c.insert(route(&[0, 1]), t(0.0));
        c.insert(route(&[0, 2]), t(1.0));
        c.mark_used(&route(&[0, 1]), t(2.0));
        c.insert(route(&[0, 3]), t(3.0));
        assert_eq!(c.num_links(), 2);
        assert!(c.contains_link(Link::new(n(0), n(1))), "recently used link kept");
        assert!(!c.contains_link(Link::new(n(0), n(2))), "LRU link evicted");
    }

    #[test]
    fn no_route_to_owner_or_unknown() {
        let mut c = LinkCache::new(n(0), 64);
        c.insert(route(&[0, 1]), t(0.0));
        assert!(c.find(n(0), t(0.0)).is_none());
        assert!(c.find(n(9), t(0.0)).is_none());
    }

    #[test]
    fn bfs_is_deterministic() {
        let mut a = LinkCache::new(n(0), 64);
        let mut b = LinkCache::new(n(0), 64);
        for r in [&[0u16, 1, 3], &[0, 2, 3], &[0, 4, 3]] {
            a.insert(route(r), t(0.0));
            b.insert(route(r), t(0.0));
        }
        assert_eq!(a.find(n(3), t(0.0)), b.find(n(3), t(0.0)));
    }
}
