//! The negative cache: a short-term blacklist of recently broken links.
//!
//! From the paper: *"Every node caches the broken links seen recently via
//! the link layer feedback or route error packets. Within a `Nt` interval
//! of creating this entry, if a node is to forward a packet with a source
//! route containing the broken link, (i) the packet is dropped and (ii) a
//! route error packet is generated. In addition, the negative cache is
//! always checked for broken links before adding a new entry in the route
//! cache. Essentially, route cache and negative cache are mutually
//! exclusive with respect to the links present in them."*
//!
//! FIFO replacement; entries expire after the configured timeout (10 s in
//! the paper's experiments).

use std::collections::VecDeque;

use packet::Link;
use sim_core::SimTime;

use crate::config::NegativeCacheConfig;

/// FIFO blacklist of recently broken links.
///
/// # Example
///
/// ```
/// use dsr::{NegativeCache, NegativeCacheConfig};
/// use packet::Link;
/// use sim_core::{NodeId, SimTime, SimDuration};
///
/// let mut neg = NegativeCache::new(NegativeCacheConfig::default());
/// let link = Link::new(NodeId::new(1), NodeId::new(2));
/// neg.insert(link, SimTime::ZERO);
/// assert!(neg.contains(link, SimTime::from_secs(5.0)));
/// assert!(!neg.contains(link, SimTime::from_secs(11.0))); // Nt = 10 s
/// ```
#[derive(Debug, Clone)]
pub struct NegativeCache {
    cfg: NegativeCacheConfig,
    entries: VecDeque<(Link, SimTime)>, // (link, expiry instant)
}

impl NegativeCache {
    /// Creates an empty negative cache.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is zero.
    pub fn new(cfg: NegativeCacheConfig) -> Self {
        assert!(cfg.capacity > 0, "negative cache capacity must be positive");
        NegativeCache { cfg, entries: VecDeque::new() }
    }

    /// Blacklists `link` until `now + timeout`. Re-inserting an existing
    /// link refreshes its expiry. On overflow the oldest entry is evicted
    /// (FIFO).
    pub fn insert(&mut self, link: Link, now: SimTime) {
        self.purge(now);
        self.entries.retain(|&(l, _)| l != link);
        if self.entries.len() >= self.cfg.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((link, now + self.cfg.timeout));
    }

    /// Whether `link` is currently blacklisted.
    pub fn contains(&self, link: Link, now: SimTime) -> bool {
        self.entries.iter().any(|&(l, exp)| l == link && exp > now)
    }

    /// The first blacklisted link among `links`, if any.
    pub fn first_blacklisted<'a, I>(&self, links: I, now: SimTime) -> Option<Link>
    where
        I: IntoIterator<Item = Link>,
        Link: 'a,
    {
        links.into_iter().find(|&l| self.contains(l, now))
    }

    /// Number of live entries at `now`.
    pub fn len(&self, now: SimTime) -> usize {
        self.entries.iter().filter(|&&(_, exp)| exp > now).count()
    }

    /// Whether no live entries remain at `now`.
    pub fn is_empty(&self, now: SimTime) -> bool {
        self.len(now) == 0
    }

    /// Drops expired entries (called opportunistically from `insert`; also
    /// safe to call from a periodic tick).
    pub fn purge(&mut self, now: SimTime) {
        self.entries.retain(|&(_, exp)| exp > now);
    }

    /// Every link still blacklisted at `now` (mutual-exclusion audits).
    pub fn live_links(&self, now: SimTime) -> Vec<Link> {
        self.entries.iter().filter(|&&(_, exp)| exp > now).map(|&(l, _)| l).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{NodeId, SimDuration};

    fn link(a: u16, b: u16) -> Link {
        Link::new(NodeId::new(a), NodeId::new(b))
    }

    fn cache(capacity: usize, timeout_s: f64) -> NegativeCache {
        NegativeCache::new(NegativeCacheConfig {
            capacity,
            timeout: SimDuration::from_secs(timeout_s),
        })
    }

    #[test]
    fn entries_expire_after_nt() {
        let mut neg = cache(8, 10.0);
        neg.insert(link(0, 1), SimTime::ZERO);
        assert!(neg.contains(link(0, 1), SimTime::from_secs(9.9)));
        assert!(!neg.contains(link(0, 1), SimTime::from_secs(10.1)));
    }

    #[test]
    fn links_are_directed() {
        let mut neg = cache(8, 10.0);
        neg.insert(link(0, 1), SimTime::ZERO);
        assert!(!neg.contains(link(1, 0), SimTime::from_secs(1.0)));
    }

    #[test]
    fn fifo_eviction_on_overflow() {
        let mut neg = cache(2, 10.0);
        neg.insert(link(0, 1), SimTime::ZERO);
        neg.insert(link(1, 2), SimTime::ZERO);
        neg.insert(link(2, 3), SimTime::ZERO);
        let t = SimTime::from_secs(1.0);
        assert!(!neg.contains(link(0, 1), t), "oldest entry must be evicted");
        assert!(neg.contains(link(1, 2), t));
        assert!(neg.contains(link(2, 3), t));
    }

    #[test]
    fn reinsert_refreshes_expiry() {
        let mut neg = cache(8, 10.0);
        neg.insert(link(0, 1), SimTime::ZERO);
        neg.insert(link(0, 1), SimTime::from_secs(8.0));
        assert!(neg.contains(link(0, 1), SimTime::from_secs(15.0)));
        assert_eq!(neg.len(SimTime::from_secs(15.0)), 1, "no duplicate entries");
    }

    #[test]
    fn first_blacklisted_scans_in_order() {
        let mut neg = cache(8, 10.0);
        neg.insert(link(2, 3), SimTime::ZERO);
        let links = vec![link(0, 1), link(1, 2), link(2, 3), link(3, 4)];
        assert_eq!(neg.first_blacklisted(links, SimTime::from_secs(1.0)), Some(link(2, 3)));
        assert_eq!(neg.first_blacklisted(vec![link(7, 8)], SimTime::from_secs(1.0)), None);
    }

    #[test]
    fn purge_removes_expired() {
        let mut neg = cache(8, 1.0);
        neg.insert(link(0, 1), SimTime::ZERO);
        neg.purge(SimTime::from_secs(2.0));
        assert!(neg.is_empty(SimTime::from_secs(2.0)));
    }

    #[test]
    fn live_links_excludes_expired() {
        let mut neg = cache(8, 10.0);
        neg.insert(link(0, 1), SimTime::ZERO);
        neg.insert(link(1, 2), SimTime::from_secs(5.0));
        assert_eq!(neg.live_links(SimTime::from_secs(12.0)), vec![link(1, 2)]);
    }
}
