//! Route-cache organizations and the negative cache.
//!
//! Two organizations implement [`RouteCache`]:
//!
//! - [`path_cache::PathCache`] — whole paths rooted at the owner, the
//!   organization of the CMU ns-2 DSR and of the paper's study;
//! - [`link_cache::LinkCache`] — a graph of individual links with
//!   shortest-path answers, the Hu & Johnson alternative the paper's
//!   related work contrasts (available as an ablation).

pub mod link_cache;
pub mod negative;
pub mod path_cache;

pub use link_cache::LinkCache;
pub use path_cache::{PathCache, RemovedLink};

use packet::{Link, Route};
use sim_core::{NodeId, SimDuration, SimTime};

/// A decision the cache made internally — state the agent cannot see from
/// the outside (capacity evictions, expiry prunes). Collected only while
/// the event log is enabled ([`RouteCache::set_event_log`]); the agent
/// drains them into cache-decision trace events.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheEvent {
    /// Capacity pressure evicted this stored route.
    Evicted {
        /// The evicted route.
        route: Route,
    },
    /// Timer-based expiry pruned this stored route (pre-prune path).
    Expired {
        /// The route as stored before the prune.
        route: Route,
    },
}

/// Operations the DSR agent needs from a route cache, regardless of its
/// internal organization.
pub trait RouteCache: Send {
    /// Inserts a route starting at the owner; returns whether the cache
    /// changed.
    fn insert(&mut self, route: Route, now: SimTime) -> bool;

    /// Shortest known route from the owner to `dst`, if any.
    fn find(&self, dst: NodeId, now: SimTime) -> Option<Route>;

    /// Purges a broken link and reports what was affected (for the
    /// adaptive-timeout estimator and the wider-error re-broadcast
    /// predicate).
    fn remove_link(&mut self, link: Link, now: SimTime) -> RemovedLink;

    /// Refreshes last-used timestamps for cached state matching the links
    /// of `seen` (timer-based expiry bookkeeping).
    fn mark_used(&mut self, seen: &Route, now: SimTime);

    /// Flags cached state matching `seen` as used in forwarded traffic
    /// (wider-error re-broadcast predicate).
    fn mark_forwarded(&mut self, seen: &Route);

    /// Prunes state unused for longer than `timeout`; returns how many
    /// entries were affected.
    fn expire(&mut self, now: SimTime, timeout: SimDuration) -> usize;

    /// Whether the cache holds `link` anywhere.
    fn contains_link(&self, link: Link) -> bool;

    /// Number of cached entries (paths or links, by organization).
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cached state as routes, for observability sampling:
    /// a path cache yields its stored paths, a link cache one two-node
    /// route per link. The sampler checks each against the mobility oracle
    /// to compute the cache's currently-valid fraction; only aggregate
    /// counts are reported, so iteration order does not matter.
    fn snapshot_routes(&self) -> Vec<Route>;

    /// Enables (or disables) the internal decision-event log feeding the
    /// cache forensics trace. Off by default; organizations that do not
    /// implement it simply report no eviction/expiry rows.
    fn set_event_log(&mut self, _on: bool) {}

    /// Moves every logged [`CacheEvent`] since the last drain into `into`
    /// (no-op while the log is disabled or unimplemented).
    fn drain_events(&mut self, _into: &mut Vec<CacheEvent>) {}

    /// Installs the timeout [`RouteCache::find`] applies at read time, so
    /// lookups between expiry sweeps never return just-expired state. The
    /// agent keeps it in sync with the sweep timeout (static policy: at
    /// construction; adaptive: on every recompute). Organizations that do
    /// not implement it keep the sweep-only behaviour.
    fn set_read_expiry(&mut self, _timeout: Option<SimDuration>) {}
}
