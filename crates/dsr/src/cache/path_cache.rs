//! The DSR path cache.
//!
//! Stores complete paths, each starting at the owning node (the *path
//! cache* organization of the CMU ns-2 implementation, as opposed to the
//! link-cache organization of Hu & Johnson — see
//! [`LinkCache`](crate::cache::link_cache::LinkCache) for that ablation).
//!
//! Beyond plain storage the cache carries the metadata the paper's
//! techniques need:
//!
//! - a per-node **last-used timestamp** inside every path, updated whenever
//!   (part of) the path is observed in a unicast packet — timer-based
//!   expiry prunes the unused suffix portions;
//! - an **entered-at timestamp** per path — the adaptive timeout derives
//!   route lifetimes from it when a cached route breaks;
//! - a **used-for-forwarding flag** — wider error notification re-broadcasts
//!   an error only at nodes that both cache the broken link *and* used such
//!   a route in traffic they forwarded.

use packet::{Link, Route};
use sim_core::{NodeId, SimDuration, SimTime};

use crate::cache::CacheEvent;

/// One cached path with its bookkeeping.
#[derive(Debug, Clone)]
pub struct PathEntry {
    path: Route,
    entered_at: SimTime,
    /// Parallel to `path.nodes()`: when each node was last seen in use.
    last_used: Vec<SimTime>,
    used_for_forwarding: bool,
}

impl PathEntry {
    fn new(path: Route, now: SimTime) -> Self {
        let n = path.len();
        PathEntry { path, entered_at: now, last_used: vec![now; n], used_for_forwarding: false }
    }

    /// The stored path (starts at the cache owner).
    pub fn path(&self) -> &Route {
        &self.path
    }

    /// When this path was last (re-)entered into the cache.
    pub fn entered_at(&self) -> SimTime {
        self.entered_at
    }

    /// Whether this path was observed in packets the owner forwarded.
    pub fn used_for_forwarding(&self) -> bool {
        self.used_for_forwarding
    }

    fn most_recent_use(&self) -> SimTime {
        self.last_used.iter().copied().max().unwrap_or(self.entered_at)
    }
}

/// Result of [`PathCache::remove_link`], feeding the adaptive-timeout
/// estimator and the wider-error re-broadcast predicate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemovedLink {
    /// Whether any cached path contained the link.
    pub contained: bool,
    /// Whether any affected path had been used in forwarded packets.
    pub was_used_for_forwarding: bool,
    /// `now - entered_at` of every affected path (its observed lifetime).
    pub route_lifetimes: Vec<SimDuration>,
    /// Multipath mode only: destinations cut off by the purge that remain
    /// reachable through a surviving cached path, paired with that path —
    /// the failovers that spare a fresh discovery. Always empty for
    /// single-path caches.
    pub failovers: Vec<(NodeId, Route)>,
}

/// A bounded cache of loop-free paths rooted at one node.
///
/// # Example
///
/// ```
/// use dsr::PathCache;
/// use packet::{Route, Link};
/// use sim_core::{NodeId, SimTime};
///
/// let n = |i| NodeId::new(i);
/// let mut cache = PathCache::new(n(0), 16);
/// let now = SimTime::ZERO;
/// cache.insert(Route::new(vec![n(0), n(1), n(2), n(3)]).unwrap(), now);
/// // A route to an intermediate node falls out of the same entry:
/// let r = cache.find(n(2), now).unwrap();
/// assert_eq!(r.hops(), 2);
/// // Breaking 1->2 truncates the path:
/// cache.remove_link(Link::new(n(1), n(2)), now);
/// assert!(cache.find(n(2), now).is_none());
/// assert!(cache.find(n(1), now).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct PathCache {
    owner: NodeId,
    capacity: usize,
    entries: Vec<PathEntry>,
    /// Timeout applied by [`PathCache::find`] at read time (the same
    /// criterion the [`PathCache::expire`] sweep uses), so a just-expired
    /// route is never returned between sweeps. `None` = no expiry policy.
    read_expiry: Option<SimDuration>,
    /// Internal decision-event log for the cache forensics trace;
    /// allocated only while enabled.
    log: Option<Vec<CacheEvent>>,
    /// Multipath mode: retain up to `k` link-disjoint paths per final
    /// destination and report failovers from [`PathCache::remove_link`].
    /// `None` = classic single-best-path behaviour.
    multipath_k: Option<usize>,
}

impl PathCache {
    /// Creates an empty cache owned by `owner` holding at most `capacity`
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        PathCache {
            owner,
            capacity,
            entries: Vec::new(),
            read_expiry: None,
            log: None,
            multipath_k: None,
        }
    }

    /// Enables multipath mode: keep up to `k` link-disjoint paths per
    /// final destination, and report failovers from
    /// [`PathCache::remove_link`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn set_multipath(&mut self, k: usize) {
        assert!(k > 0, "multipath k must be positive");
        self.multipath_k = Some(k);
    }

    /// Installs the read-time expiry timeout (see
    /// [`RouteCache::set_read_expiry`](crate::cache::RouteCache::set_read_expiry)).
    pub fn set_read_expiry(&mut self, timeout: Option<SimDuration>) {
        self.read_expiry = timeout;
    }

    /// Enables or disables the internal decision-event log.
    pub fn set_event_log(&mut self, on: bool) {
        self.log = if on { Some(self.log.take().unwrap_or_default()) } else { None };
    }

    /// Drains logged decision events into `into`.
    pub fn drain_events(&mut self, into: &mut Vec<CacheEvent>) {
        if let Some(log) = &mut self.log {
            into.append(log);
        }
    }

    /// Index of the first node of `entry` whose last-used timestamp has
    /// outlived `timeout` at `now` — the shared criterion of the expiry
    /// sweep and the read-time filter (node 0 is the owner itself, so
    /// staleness starts at index 1). Equal to the path length when nothing
    /// is stale.
    fn stale_cut(entry: &PathEntry, now: SimTime, timeout: SimDuration) -> usize {
        (1..entry.path.len())
            .find(|&j| entry.last_used[j] + timeout < now)
            .unwrap_or(entry.path.len())
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Number of cached paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no paths.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over cached entries (inspection/testing).
    pub fn iter(&self) -> impl Iterator<Item = &PathEntry> {
        self.entries.iter()
    }

    /// Inserts `path` (which must start at the owner and have at least one
    /// hop). Returns `true` if the cache changed.
    ///
    /// An exact duplicate — or a prefix of an existing path — refreshes the
    /// matching portion's timestamps instead of adding a new entry (this is
    /// also how stale entries get *re-polluted* by in-flight packets, the
    /// paper's "quick pollution" problem). A path extending an existing
    /// prefix replaces it. On overflow the least-recently-used entry is
    /// evicted.
    ///
    /// # Panics
    ///
    /// Panics if `path` does not start at the owner.
    pub fn insert(&mut self, path: Route, now: SimTime) -> bool {
        assert_eq!(path.source(), self.owner, "cached paths start at the owner");
        if path.hops() == 0 {
            return false;
        }
        // Refresh if `path` is a prefix of (or equal to) an existing entry.
        for entry in &mut self.entries {
            if entry.path.len() >= path.len() && entry.path.nodes()[..path.len()] == *path.nodes() {
                for ts in entry.last_used[..path.len()].iter_mut() {
                    *ts = now;
                }
                entry.entered_at = now;
                return true;
            }
        }
        // Replace any existing entries that are prefixes of the new path.
        self.entries.retain(|e| e.path.nodes() != &path.nodes()[..e.path.len().min(path.len())]);
        if let Some(k) = self.multipath_k {
            if !self.admit_multipath(&path, k, now) {
                return false;
            }
        }
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.push(PathEntry::new(path, now));
        true
    }

    /// Multipath admission for `path` against the entries sharing its
    /// final destination. Link-disjointness rule:
    ///
    /// - a candidate sharing a link with an existing same-destination
    ///   entry replaces it (them) only when strictly shorter than each,
    ///   and is refused otherwise — overlapping alternates add no
    ///   failover value;
    /// - a fully disjoint candidate is admitted while fewer than `k`
    ///   same-destination paths are cached; at `k` it displaces the
    ///   longest one only when strictly shorter than it.
    ///
    /// Returns whether `path` may be inserted (displaced entries are
    /// already removed and logged as evictions).
    fn admit_multipath(&mut self, path: &Route, k: usize, _now: SimTime) -> bool {
        let dst = path.destination();
        let same_dst: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.entries[i].path.destination() == dst)
            .collect();
        let overlapping: Vec<usize> = same_dst
            .iter()
            .copied()
            .filter(|&i| self.entries[i].path.links().any(|l| path.contains_link(l)))
            .collect();
        if !overlapping.is_empty() {
            if overlapping.iter().any(|&i| self.entries[i].path.hops() <= path.hops()) {
                return false;
            }
            for &i in overlapping.iter().rev() {
                let entry = self.entries.remove(i);
                if let Some(log) = &mut self.log {
                    log.push(CacheEvent::Evicted { route: entry.path });
                }
            }
            return true;
        }
        if same_dst.len() < k {
            return true;
        }
        let longest = same_dst
            .into_iter()
            .max_by_key(|&i| (self.entries[i].path.hops(), self.entries[i].path.nodes().to_vec()))
            .expect("k > 0 entries");
        if self.entries[longest].path.hops() <= path.hops() {
            return false;
        }
        let entry = self.entries.remove(longest);
        if let Some(log) = &mut self.log {
            log.push(CacheEvent::Evicted { route: entry.path });
        }
        true
    }

    fn evict_lru(&mut self) {
        if let Some((idx, _)) =
            self.entries.iter().enumerate().min_by_key(|(_, e)| e.most_recent_use())
        {
            let entry = self.entries.swap_remove(idx);
            if let Some(log) = &mut self.log {
                log.push(CacheEvent::Evicted { route: entry.path });
            }
        }
    }

    /// Shortest cached route from the owner to `dst` (paths may be used up
    /// to any intermediate node). Ties favor the most recently entered.
    ///
    /// When a read-time expiry timeout is installed
    /// ([`PathCache::set_read_expiry`]), the stale suffix of every path —
    /// by the exact criterion the [`PathCache::expire`] sweep applies — is
    /// invisible to the lookup, so a just-expired route is never returned
    /// between sweeps.
    pub fn find(&self, dst: NodeId, now: SimTime) -> Option<Route> {
        let mut best: Option<(usize, SimTime, Route)> = None;
        for entry in &self.entries {
            let usable = match self.read_expiry {
                Some(timeout) => Self::stale_cut(entry, now, timeout),
                None => entry.path.len(),
            };
            if let Some(prefix) = entry.path.prefix_through(dst) {
                if prefix.hops() == 0 || prefix.len() > usable {
                    continue;
                }
                let candidate = (prefix.hops(), entry.entered_at, prefix);
                best = match best {
                    None => Some(candidate),
                    Some(b) => {
                        if candidate.0 < b.0 || (candidate.0 == b.0 && candidate.1 > b.1) {
                            Some(candidate)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
        }
        best.map(|(_, _, route)| route)
    }

    /// Whether any cached path uses `link`.
    pub fn contains_link(&self, link: Link) -> bool {
        self.entries.iter().any(|e| e.path.contains_link(link))
    }

    /// Truncates every path containing `link` at the point of failure
    /// (paths reduced below one hop are dropped) and reports what was
    /// affected.
    pub fn remove_link(&mut self, link: Link, now: SimTime) -> RemovedLink {
        let mut outcome = RemovedLink::default();
        let mut lost_dsts: Vec<NodeId> = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for mut entry in self.entries.drain(..) {
            if let Some(truncated) = entry.path.truncate_before_link(link) {
                outcome.contained = true;
                outcome.was_used_for_forwarding |= entry.used_for_forwarding;
                outcome.route_lifetimes.push(now.saturating_since(entry.entered_at));
                let dst = entry.path.destination();
                if !lost_dsts.contains(&dst) {
                    lost_dsts.push(dst);
                }
                if truncated.hops() >= 1 {
                    entry.last_used.truncate(truncated.len());
                    entry.path = truncated;
                    kept.push(entry);
                }
            } else {
                kept.push(entry);
            }
        }
        // Truncation can create duplicates; drop exact repeats.
        let mut deduped: Vec<PathEntry> = Vec::with_capacity(kept.len());
        for entry in kept {
            if !deduped.iter().any(|e| e.path == entry.path) {
                deduped.push(entry);
            }
        }
        self.entries = deduped;
        if self.multipath_k.is_some() {
            // A destination whose path was cut but that a surviving entry
            // still reaches fails over without a fresh discovery.
            for dst in lost_dsts {
                if let Some(route) = self.find(dst, now) {
                    outcome.failovers.push((dst, route));
                }
            }
        }
        outcome
    }

    /// Records that the links of `seen` were observed in a unicast packet
    /// at `now`: every cached node adjacent to one of those links gets its
    /// last-used timestamp refreshed. This is the paper's expiry-timestamp
    /// update rule.
    pub fn mark_used(&mut self, seen: &Route, now: SimTime) {
        for entry in &mut self.entries {
            for j in 1..entry.path.len() {
                let l = entry.path.link(j - 1);
                if seen.contains_link(l) {
                    entry.last_used[j - 1] = now;
                    entry.last_used[j] = now;
                }
            }
        }
    }

    /// Records that the owner *forwarded* a packet along `seen`: cached
    /// paths sharing a link with it are flagged, enabling the wider-error
    /// re-broadcast predicate.
    pub fn mark_forwarded(&mut self, seen: &Route) {
        for entry in &mut self.entries {
            if entry.path.links().any(|l| seen.contains_link(l)) {
                entry.used_for_forwarding = true;
            }
        }
    }

    /// Timer-based expiry: prunes the portion of every path unused for
    /// longer than `timeout` (truncating at the first stale node); paths
    /// reduced below one hop are dropped. Returns how many entries were
    /// affected.
    pub fn expire(&mut self, now: SimTime, timeout: SimDuration) -> usize {
        let mut affected = 0;
        let mut kept = Vec::with_capacity(self.entries.len());
        for mut entry in self.entries.drain(..) {
            let cut = Self::stale_cut(&entry, now, timeout);
            if cut == entry.path.len() {
                kept.push(entry);
                continue;
            }
            affected += 1;
            if let Some(log) = &mut self.log {
                log.push(CacheEvent::Expired { route: entry.path.clone() });
            }
            if cut >= 2 {
                let nodes = entry.path.nodes()[..cut].to_vec();
                entry.path = Route::new(nodes).expect("prefix of a loop-free route");
                entry.last_used.truncate(cut);
                kept.push(entry);
            }
        }
        self.entries = kept;
        affected
    }

    /// Removes every cached path (testing / reset).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl crate::cache::RouteCache for PathCache {
    fn insert(&mut self, path: Route, now: SimTime) -> bool {
        PathCache::insert(self, path, now)
    }

    fn find(&self, dst: NodeId, now: SimTime) -> Option<Route> {
        PathCache::find(self, dst, now)
    }

    fn remove_link(&mut self, link: Link, now: SimTime) -> RemovedLink {
        PathCache::remove_link(self, link, now)
    }

    fn mark_used(&mut self, seen: &Route, now: SimTime) {
        PathCache::mark_used(self, seen, now)
    }

    fn mark_forwarded(&mut self, seen: &Route) {
        PathCache::mark_forwarded(self, seen)
    }

    fn expire(&mut self, now: SimTime, timeout: SimDuration) -> usize {
        PathCache::expire(self, now, timeout)
    }

    fn contains_link(&self, link: Link) -> bool {
        PathCache::contains_link(self, link)
    }

    fn len(&self) -> usize {
        PathCache::len(self)
    }

    fn snapshot_routes(&self) -> Vec<Route> {
        self.entries.iter().map(|e| e.path.clone()).collect()
    }

    fn set_event_log(&mut self, on: bool) {
        PathCache::set_event_log(self, on)
    }

    fn drain_events(&mut self, into: &mut Vec<CacheEvent>) {
        PathCache::drain_events(self, into)
    }

    fn set_read_expiry(&mut self, timeout: Option<SimDuration>) {
        PathCache::set_read_expiry(self, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn route(ids: &[u16]) -> Route {
        Route::new(ids.iter().map(|&i| n(i)).collect()).expect("valid route")
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn cache_with(paths: &[&[u16]]) -> PathCache {
        let mut c = PathCache::new(n(0), 16);
        for p in paths {
            c.insert(route(p), SimTime::ZERO);
        }
        c
    }

    #[test]
    fn find_prefers_shortest() {
        let c = cache_with(&[&[0, 1, 2, 3], &[0, 4, 3]]);
        assert_eq!(c.find(n(3), t(0.0)).unwrap(), route(&[0, 4, 3]));
    }

    #[test]
    fn find_uses_intermediate_nodes() {
        let c = cache_with(&[&[0, 1, 2, 3]]);
        assert_eq!(c.find(n(1), t(0.0)).unwrap(), route(&[0, 1]));
        assert_eq!(c.find(n(2), t(0.0)).unwrap(), route(&[0, 1, 2]));
        assert!(c.find(n(9), t(0.0)).is_none());
    }

    #[test]
    fn find_never_returns_zero_hop_route() {
        let c = cache_with(&[&[0, 1]]);
        assert!(c.find(n(0), t(0.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "start at the owner")]
    fn insert_rejects_foreign_path() {
        let mut c = PathCache::new(n(0), 4);
        c.insert(route(&[1, 2]), t(0.0));
    }

    #[test]
    fn duplicate_insert_refreshes_not_duplicates() {
        let mut c = PathCache::new(n(0), 4);
        c.insert(route(&[0, 1, 2]), t(0.0));
        c.insert(route(&[0, 1, 2]), t(5.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.iter().next().unwrap().entered_at(), t(5.0));
    }

    #[test]
    fn prefix_insert_refreshes_existing_entry() {
        let mut c = PathCache::new(n(0), 4);
        c.insert(route(&[0, 1, 2, 3]), t(0.0));
        c.insert(route(&[0, 1]), t(2.0));
        assert_eq!(c.len(), 1, "prefix must not create a second entry");
    }

    #[test]
    fn extension_replaces_prefix_entry() {
        let mut c = PathCache::new(n(0), 4);
        c.insert(route(&[0, 1]), t(0.0));
        c.insert(route(&[0, 1, 2]), t(1.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.find(n(2), t(1.0)).unwrap(), route(&[0, 1, 2]));
    }

    #[test]
    fn remove_link_truncates_and_reports() {
        let mut c = cache_with(&[&[0, 1, 2, 3], &[0, 4, 3]]);
        let out = c.remove_link(Link::new(n(2), n(3)), t(7.0));
        assert!(out.contained);
        assert_eq!(out.route_lifetimes, vec![SimDuration::from_secs(7.0)]);
        assert!(c.find(n(3), t(7.0)).is_some(), "alternate route survives");
        assert_eq!(c.find(n(2), t(7.0)).unwrap(), route(&[0, 1, 2]), "truncated prefix kept");
    }

    #[test]
    fn remove_first_hop_drops_entry() {
        let mut c = cache_with(&[&[0, 1, 2]]);
        let out = c.remove_link(Link::new(n(0), n(1)), t(1.0));
        assert!(out.contained);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_unknown_link_reports_not_contained() {
        let mut c = cache_with(&[&[0, 1, 2]]);
        let out = c.remove_link(Link::new(n(5), n(6)), t(1.0));
        assert!(!out.contained);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn forwarding_flag_feeds_removal_outcome() {
        let mut c = cache_with(&[&[0, 1, 2, 3]]);
        assert!(!c.remove_link(Link::new(n(9), n(8)), t(0.0)).was_used_for_forwarding);
        c.mark_forwarded(&route(&[5, 1, 2, 6]));
        let out = c.remove_link(Link::new(n(1), n(2)), t(1.0));
        assert!(out.was_used_for_forwarding);
    }

    #[test]
    fn expiry_prunes_stale_suffix() {
        let mut c = PathCache::new(n(0), 4);
        c.insert(route(&[0, 1, 2, 3]), t(0.0));
        // Links 0-1 and 1-2 observed at t=9; 2-3 never again.
        c.mark_used(&route(&[0, 1, 2]), t(9.0));
        let affected = c.expire(t(10.0), SimDuration::from_secs(5.0));
        assert_eq!(affected, 1);
        assert_eq!(c.find(n(2), t(10.0)).unwrap(), route(&[0, 1, 2]));
        assert!(c.find(n(3), t(10.0)).is_none(), "stale tail must be pruned");
    }

    #[test]
    fn expiry_drops_fully_stale_entries() {
        let mut c = PathCache::new(n(0), 4);
        c.insert(route(&[0, 1, 2]), t(0.0));
        assert_eq!(c.expire(t(20.0), SimDuration::from_secs(5.0)), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn fresh_entries_survive_expiry() {
        let mut c = PathCache::new(n(0), 4);
        c.insert(route(&[0, 1, 2]), t(0.0));
        assert_eq!(c.expire(t(3.0), SimDuration::from_secs(5.0)), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn mark_used_is_link_directed() {
        let mut c = PathCache::new(n(0), 4);
        c.insert(route(&[0, 1, 2]), t(0.0));
        // Reverse direction does not refresh.
        c.mark_used(&route(&[2, 1, 0]), t(9.0));
        assert_eq!(c.expire(t(10.0), SimDuration::from_secs(5.0)), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut c = PathCache::new(n(0), 2);
        c.insert(route(&[0, 1]), t(0.0));
        c.insert(route(&[0, 2]), t(1.0));
        // Touch the older entry so the other becomes LRU.
        c.mark_used(&route(&[0, 1]), t(5.0));
        c.insert(route(&[0, 3]), t(6.0));
        assert_eq!(c.len(), 2);
        assert!(c.find(n(1), t(6.0)).is_some(), "recently used entry kept");
        assert!(c.find(n(2), t(6.0)).is_none(), "LRU entry evicted");
    }

    #[test]
    fn read_expiry_hides_just_expired_route() {
        let mut c = PathCache::new(n(0), 4);
        c.set_read_expiry(Some(SimDuration::from_secs(5.0)));
        c.insert(route(&[0, 1, 2]), t(0.0));
        // Within the timeout the route is served...
        assert!(c.find(n(2), t(4.0)).is_some());
        // ...but once expired it is never returned stale, even though no
        // sweep has run yet (the bug this test pins: `find` used to ignore
        // `now` entirely).
        assert!(c.find(n(2), t(6.0)).is_none(), "just-expired route must not be served");
        assert_eq!(c.len(), 1, "the sweep, not the read, prunes the entry");
    }

    #[test]
    fn read_expiry_serves_fresh_prefix_of_stale_path() {
        let mut c = PathCache::new(n(0), 4);
        c.set_read_expiry(Some(SimDuration::from_secs(5.0)));
        c.insert(route(&[0, 1, 2, 3]), t(0.0));
        // Links 0-1 and 1-2 refreshed at t=9; the 2-3 tail goes stale.
        c.mark_used(&route(&[0, 1, 2]), t(9.0));
        assert!(c.find(n(3), t(10.0)).is_none(), "stale tail invisible to reads");
        assert_eq!(c.find(n(2), t(10.0)).unwrap(), route(&[0, 1, 2]), "fresh prefix served");
    }

    #[test]
    fn read_expiry_matches_sweep_criterion() {
        // The read-time filter and the sweep must agree on the instant a
        // route goes stale: anything `find` refuses, the next sweep prunes.
        let mut c = PathCache::new(n(0), 4);
        c.set_read_expiry(Some(SimDuration::from_secs(5.0)));
        c.insert(route(&[0, 1, 2]), t(0.0));
        // Boundary: last_used + timeout == now is NOT yet expired.
        assert!(c.find(n(2), t(5.0)).is_some());
        assert_eq!(c.expire(t(5.0), SimDuration::from_secs(5.0)), 0);
        // Just past the boundary: both refuse.
        assert!(c.find(n(2), t(5.001)).is_none());
        assert_eq!(c.expire(t(5.001), SimDuration::from_secs(5.0)), 1);
    }

    #[test]
    fn without_read_expiry_find_ignores_time() {
        let mut c = PathCache::new(n(0), 4);
        c.insert(route(&[0, 1, 2]), t(0.0));
        assert!(c.find(n(2), t(1e6)).is_some(), "no expiry policy: routes never age out");
    }

    #[test]
    fn event_log_records_evictions_and_expiries() {
        let mut c = PathCache::new(n(0), 1);
        c.set_event_log(true);
        c.insert(route(&[0, 1]), t(0.0));
        c.insert(route(&[0, 2]), t(1.0));
        c.expire(t(20.0), SimDuration::from_secs(5.0));
        let mut events = Vec::new();
        c.drain_events(&mut events);
        assert_eq!(
            events,
            vec![
                CacheEvent::Evicted { route: route(&[0, 1]) },
                CacheEvent::Expired { route: route(&[0, 2]) },
            ]
        );
        // Drained: a second drain yields nothing.
        events.clear();
        c.drain_events(&mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn event_log_off_records_nothing() {
        let mut c = PathCache::new(n(0), 1);
        c.insert(route(&[0, 1]), t(0.0));
        c.insert(route(&[0, 2]), t(1.0));
        let mut events = Vec::new();
        c.drain_events(&mut events);
        assert!(events.is_empty());
    }

    fn multipath_cache() -> PathCache {
        let mut c = PathCache::new(n(0), 16);
        c.set_multipath(2);
        c
    }

    #[test]
    fn multipath_keeps_disjoint_alternates() {
        let mut c = multipath_cache();
        assert!(c.insert(route(&[0, 1, 2, 3]), t(0.0)));
        assert!(c.insert(route(&[0, 4, 5, 3]), t(0.0)), "disjoint alternate admitted");
        assert_eq!(c.len(), 2);
        // A third disjoint path of equal length is refused at k = 2.
        assert!(!c.insert(route(&[0, 6, 7, 3]), t(0.0)));
        assert_eq!(c.len(), 2);
        // A shorter disjoint path displaces the longest alternate.
        assert!(c.insert(route(&[0, 8, 3]), t(1.0)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.find(n(3), t(1.0)).unwrap(), route(&[0, 8, 3]));
    }

    #[test]
    fn multipath_overlapping_path_replaced_only_when_shorter() {
        let mut c = multipath_cache();
        c.insert(route(&[0, 1, 2, 3]), t(0.0));
        // Shares link 1->2 and is no shorter: refused.
        assert!(!c.insert(route(&[0, 1, 2, 4, 3]), t(0.0)));
        assert_eq!(c.len(), 1);
        // Shares link 2->3 but is shorter: replaces the overlapping entry.
        assert!(c.insert(route(&[0, 2, 3]), t(1.0)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.find(n(3), t(1.0)).unwrap(), route(&[0, 2, 3]));
    }

    #[test]
    fn multipath_remove_link_reports_failover() {
        let mut c = multipath_cache();
        c.insert(route(&[0, 1, 2]), t(0.0));
        c.insert(route(&[0, 3, 2]), t(0.0));
        let out = c.remove_link(Link::new(n(1), n(2)), t(1.0));
        assert!(out.contained);
        assert_eq!(out.failovers, vec![(n(2), route(&[0, 3, 2]))]);
        // The second break leaves no survivor: no failover reported.
        let out = c.remove_link(Link::new(n(3), n(2)), t(2.0));
        assert!(out.contained);
        assert!(out.failovers.is_empty());
    }

    #[test]
    fn single_path_mode_never_reports_failovers() {
        let mut c = PathCache::new(n(0), 16);
        c.insert(route(&[0, 1, 2]), t(0.0));
        c.insert(route(&[0, 3, 2]), t(0.0));
        let out = c.remove_link(Link::new(n(1), n(2)), t(1.0));
        assert!(out.contained);
        assert!(out.failovers.is_empty(), "failover reporting is multipath-only");
    }

    #[test]
    fn multipath_eviction_of_displaced_alternate_is_logged() {
        let mut c = multipath_cache();
        c.set_event_log(true);
        c.insert(route(&[0, 1, 2, 3]), t(0.0));
        c.insert(route(&[0, 4, 3]), t(0.0));
        let mut events = Vec::new();
        c.drain_events(&mut events);
        events.clear();
        assert!(c.insert(route(&[0, 5, 3]), t(1.0)), "shorter disjoint path displaces longest");
        c.drain_events(&mut events);
        assert_eq!(events, vec![CacheEvent::Evicted { route: route(&[0, 1, 2, 3]) }]);
    }

    #[test]
    fn truncation_dedupes_identical_prefixes() {
        let mut c = PathCache::new(n(0), 8);
        c.insert(route(&[0, 1, 2, 3]), t(0.0));
        c.insert(route(&[0, 1, 2, 4]), t(0.0));
        c.remove_link(Link::new(n(2), n(3)), t(1.0));
        c.remove_link(Link::new(n(2), n(4)), t(1.0));
        assert_eq!(c.len(), 1, "identical truncated prefixes must merge");
    }
}
