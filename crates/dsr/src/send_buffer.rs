//! The send buffer: data packets waiting for a route at their source.
//!
//! The paper's model buffers *only at the traffic source* ("Buffering is
//! done only at the source of the traffic session"): 64 packets, dropped
//! after 30 seconds of waiting.

use std::collections::VecDeque;

use sim_core::{NodeId, SimTime};

/// A data packet awaiting route discovery (no source route yet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingData {
    /// Globally unique packet id.
    pub uid: u64,
    /// Final destination.
    pub dst: NodeId,
    /// Flow sequence number.
    pub seq: u64,
    /// Application payload size in bytes.
    pub payload_bytes: usize,
    /// Origination instant (start of the end-to-end delay clock).
    pub sent_at: SimTime,
}

/// Bounded FIFO of packets awaiting routes, with per-packet timeout.
///
/// # Example
///
/// ```
/// use dsr::{SendBuffer, PendingData};
/// use sim_core::{NodeId, SimTime, SimDuration};
///
/// let mut buf = SendBuffer::new(64, SimDuration::from_secs(30.0));
/// let pkt = PendingData {
///     uid: 1, dst: NodeId::new(5), seq: 0, payload_bytes: 512,
///     sent_at: SimTime::ZERO,
/// };
/// assert!(buf.push(pkt, SimTime::ZERO).is_none());
/// assert_eq!(buf.take_for(NodeId::new(5)).len(), 1);
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct SendBuffer {
    entries: VecDeque<(PendingData, SimTime)>, // (packet, enqueued_at)
    capacity: usize,
    timeout: sim_core::SimDuration,
}

impl SendBuffer {
    /// Creates a buffer of `capacity` packets with the given wait timeout.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, timeout: sim_core::SimDuration) -> Self {
        assert!(capacity > 0, "send buffer capacity must be positive");
        SendBuffer { entries: VecDeque::new(), capacity, timeout }
    }

    /// Buffers `pkt`. On overflow the *oldest* packet is evicted and
    /// returned so the caller can account for the drop (matching the ns-2
    /// send buffer, which keeps the freshest traffic).
    pub fn push(&mut self, pkt: PendingData, now: SimTime) -> Option<PendingData> {
        let evicted = if self.entries.len() >= self.capacity {
            self.entries.pop_front().map(|(p, _)| p)
        } else {
            None
        };
        self.entries.push_back((pkt, now));
        evicted
    }

    /// Removes and returns every buffered packet destined for `dst`
    /// (in arrival order) — called when a route to `dst` appears.
    pub fn take_for(&mut self, dst: NodeId) -> Vec<PendingData> {
        let mut taken = Vec::new();
        self.entries.retain(|(p, _)| {
            if p.dst == dst {
                taken.push(p.clone());
                false
            } else {
                true
            }
        });
        taken
    }

    /// Drops packets that waited longer than the timeout and returns them
    /// for accounting.
    pub fn purge_expired(&mut self, now: SimTime) -> Vec<PendingData> {
        let timeout = self.timeout;
        let mut expired = Vec::new();
        self.entries.retain(|(p, at)| {
            if *at + timeout <= now {
                expired.push(p.clone());
                false
            } else {
                true
            }
        });
        expired
    }

    /// Whether any buffered packet targets `dst` (drives discovery
    /// retries).
    pub fn has_packets_for(&self, dst: NodeId) -> bool {
        self.entries.iter().any(|(p, _)| p.dst == dst)
    }

    /// The distinct destinations currently waiting for routes.
    pub fn destinations(&self) -> Vec<NodeId> {
        let mut dsts = Vec::new();
        for (p, _) in &self.entries {
            if !dsts.contains(&p.dst) {
                dsts.push(p.dst);
            }
        }
        dsts
    }

    /// The uids of every buffered packet, in arrival order (conservation
    /// audits).
    pub fn uids(&self) -> Vec<u64> {
        self.entries.iter().map(|(p, _)| p.uid).collect()
    }

    /// Buffered packet count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn pkt(uid: u64, dst: u16) -> PendingData {
        PendingData {
            uid,
            dst: NodeId::new(dst),
            seq: uid,
            payload_bytes: 512,
            sent_at: SimTime::ZERO,
        }
    }

    fn buf(cap: usize, timeout_s: f64) -> SendBuffer {
        SendBuffer::new(cap, SimDuration::from_secs(timeout_s))
    }

    #[test]
    fn take_for_preserves_order_and_filters() {
        let mut b = buf(8, 30.0);
        b.push(pkt(1, 5), SimTime::ZERO);
        b.push(pkt(2, 6), SimTime::ZERO);
        b.push(pkt(3, 5), SimTime::ZERO);
        let taken = b.take_for(NodeId::new(5));
        assert_eq!(taken.iter().map(|p| p.uid).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(b.len(), 1);
        assert!(b.has_packets_for(NodeId::new(6)));
        assert!(!b.has_packets_for(NodeId::new(5)));
    }

    #[test]
    fn overflow_evicts_oldest() {
        let mut b = buf(2, 30.0);
        assert!(b.push(pkt(1, 5), SimTime::ZERO).is_none());
        assert!(b.push(pkt(2, 5), SimTime::ZERO).is_none());
        let evicted = b.push(pkt(3, 5), SimTime::ZERO).expect("overflow");
        assert_eq!(evicted.uid, 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn purge_drops_only_expired() {
        let mut b = buf(8, 30.0);
        b.push(pkt(1, 5), SimTime::ZERO);
        b.push(pkt(2, 5), SimTime::from_secs(20.0));
        let expired = b.purge_expired(SimTime::from_secs(31.0));
        assert_eq!(expired.iter().map(|p| p.uid).collect::<Vec<_>>(), vec![1]);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn empty_buffer_behaves() {
        let mut b = buf(2, 30.0);
        assert!(b.is_empty());
        assert!(b.take_for(NodeId::new(1)).is_empty());
        assert!(b.purge_expired(SimTime::from_secs(100.0)).is_empty());
    }
}
