//! Criterion benchmarks isolating the medium's arrival-planning hot path:
//! the linear full-position scan vs the spatial neighbor grid, and the
//! allocating vs buffer-reusing planner variants, at the paper's 100-node
//! density and at a 400-node scale where the linear scan's O(n) per
//! transmission starts to dominate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mobility::{NeighborGrid, Point};
use phy::{plan_arrivals, plan_arrivals_indexed_into, plan_arrivals_into, RadioConfig};
use sim_core::{NodeId, SimDuration, SimTime};

/// Deterministic pseudo-random positions (no RNG dependency, stable run
/// to run) at the paper's node density: 100 nodes per 2200 m x 600 m.
fn scattered_positions(n: usize) -> Vec<Point> {
    let scale = (n as f64 / 100.0).sqrt();
    let (w, h) = (2200.0 * scale, 600.0 * scale);
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next() * w, next() * h)).collect()
}

fn bench_plan_arrivals(c: &mut Criterion) {
    let radio = RadioConfig::wavelan();
    let now = SimTime::from_secs(100.0);
    let airtime = SimDuration::from_millis(2.0);
    for n in [100usize, 400] {
        let positions = scattered_positions(n);
        let mut grid = NeighborGrid::new(radio.carrier_sense_range_m() * 1.001);
        grid.rebuild(&positions);
        let mut group = c.benchmark_group(format!("plan_arrivals_{n}_nodes"));

        // The pre-existing allocating linear scan (the old hot path).
        group.bench_function("linear_alloc", |b| {
            let mut tx = 0u16;
            b.iter(|| {
                tx = (tx + 1) % n as u16;
                black_box(plan_arrivals(NodeId::new(tx), &positions, now, airtime, &radio))
            })
        });

        // Linear scan into a reused buffer (allocation removed).
        group.bench_function("linear_reused_buffer", |b| {
            let mut tx = 0u16;
            let mut buf = Vec::new();
            b.iter(|| {
                tx = (tx + 1) % n as u16;
                let suppressed = plan_arrivals_into(
                    NodeId::new(tx),
                    &positions,
                    now,
                    airtime,
                    &radio,
                    |_| false,
                    &mut buf,
                );
                black_box((buf.len(), suppressed))
            })
        });

        // Grid lookup + reused buffers (the driver's production path).
        group.bench_function("grid_reused_buffer", |b| {
            let mut tx = 0u16;
            let mut buf = Vec::new();
            let mut cands = Vec::new();
            b.iter(|| {
                tx = (tx + 1) % n as u16;
                grid.candidates_into(positions[usize::from(tx)], &mut cands);
                let suppressed = plan_arrivals_indexed_into(
                    NodeId::new(tx),
                    &cands,
                    &positions,
                    now,
                    airtime,
                    &radio,
                    |_| false,
                    &mut buf,
                );
                black_box((buf.len(), suppressed))
            })
        });

        // Grid rebuild cost, amortized over every position refresh.
        group.bench_function("grid_rebuild", |b| {
            b.iter(|| {
                grid.rebuild(black_box(&positions));
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_plan_arrivals);
criterion_main!(benches);
