//! Criterion benchmarks for the simulation engine substrate: event queue,
//! mobility interpolation, propagation planning, and one MAC exchange.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use mac::{Dcf, MacCommand, MacConfig, MacTimer, Priority};
use mobility::{MobilityModel, Point, RandomWaypoint, WaypointConfig};
use phy::{plan_arrivals, RadioConfig};
use sim_core::{EventQueue, NodeId, RngFactory, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Pseudo-random but deterministic times.
                q.schedule(SimTime::from_nanos(i.wrapping_mul(2654435761) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    group.bench_function("schedule_cancel_half_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> =
                (0..10_000u64).map(|i| q.schedule(SimTime::from_nanos(i % 1_000), i)).collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
    group.finish();
}

fn bench_mobility(c: &mut Criterion) {
    let cfg = WaypointConfig::paper(SimDuration::ZERO);
    let model = RandomWaypoint::generate(&cfg, RngFactory::new(1));
    let mut group = c.benchmark_group("mobility");
    group.bench_function("position_query", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t = (t + 7) % 500;
            black_box(model.position(NodeId::new((t % 100) as u16), SimTime::from_secs(t as f64)))
        })
    });
    group.bench_function("snapshot_100_nodes", |b| {
        b.iter(|| black_box(model.snapshot(SimTime::from_secs(123.0))))
    });
    group.finish();
}

fn bench_phy(c: &mut Criterion) {
    let radio = RadioConfig::wavelan();
    let cfg = WaypointConfig::paper(SimDuration::ZERO);
    let model = RandomWaypoint::generate(&cfg, RngFactory::new(1));
    let positions: Vec<Point> = model.snapshot(SimTime::from_secs(100.0));
    let mut group = c.benchmark_group("phy");
    group.bench_function("plan_arrivals_100_nodes", |b| {
        b.iter(|| {
            black_box(plan_arrivals(
                NodeId::new(0),
                &positions,
                SimTime::from_secs(100.0),
                SimDuration::from_millis(2.0),
                &radio,
            ))
        })
    });
    group.finish();
}

fn bench_mac_exchange(c: &mut Criterion) {
    let cfg = MacConfig::ieee80211_dsss();
    let mut group = c.benchmark_group("mac");
    group.bench_function("full_unicast_exchange", |b| {
        b.iter_batched(
            || Dcf::<u32>::new(NodeId::new(0), cfg.clone(), RngFactory::new(3).stream("mac", 0)),
            |mut mac| {
                // Drive a complete RTS/CTS/DATA/ACK exchange through the
                // state machine (timer chasing as the driver would).
                let now = SimTime::from_secs(1.0);
                let mut cmds = mac.enqueue(9, NodeId::new(1), 512, Priority::Data, now);
                for _ in 0..16 {
                    let timer = cmds.iter().find_map(|c| match c {
                        MacCommand::SetTimer { timer, at } => Some((*timer, *at)),
                        _ => None,
                    });
                    let Some((timer, at)) = timer else { break };
                    cmds = mac.on_timer(timer, at);
                    if matches!(timer, MacTimer::CtsTimeout) {
                        break;
                    }
                }
                black_box(mac)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_mobility, bench_phy, bench_mac_exchange);
criterion_main!(benches);
