//! Criterion benchmarks isolating per-receiver arrival handling: the
//! legacy paired start/end protocol (every sensed frame costs two
//! receiver-state operations plus a MAC busy probe each) versus the fused
//! lazy-envelope protocol (decodable frames cost a boundary + decode,
//! sub-RX interference folds inside later probes), at the paper's
//! 100-node density and at 400 nodes where most sensed frames are sub-RX.
//!
//! The workload is realistic: arrivals are planned by the production
//! medium planner over scattered positions, so the decodable/sub-RX mix
//! and power distribution match what the simulator sees.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mobility::Point;
use phy::{plan_arrivals, PendingArrival, RadioConfig, ReceiverState, SEQ_MAX};
use sim_core::{NodeId, SimDuration, SimTime};

/// Deterministic pseudo-random positions (no RNG dependency, stable run
/// to run) at the paper's node density: 100 nodes per 2200 m x 600 m.
fn scattered_positions(n: usize) -> Vec<Point> {
    let scale = (n as f64 / 100.0).sqrt();
    let (w, h) = (2200.0 * scale, 600.0 * scale);
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n).map(|_| Point::new(next() * w, next() * h)).collect()
}

/// One planned arrival at a specific receiver, with the queue seq the
/// runner would have reserved for its start boundary at plan time.
#[derive(Clone, Copy)]
struct Planned {
    tx_id: u64,
    power_w: f64,
    start: SimTime,
    start_seq: u64,
    end: SimTime,
}

/// Per-receiver arrival streams for a burst of staggered transmissions,
/// planned by the production medium planner.
fn workload(n: usize, transmissions: usize) -> Vec<Vec<Planned>> {
    let radio = RadioConfig::wavelan();
    let positions = scattered_positions(n);
    let airtime = SimDuration::from_millis(2.0);
    let mut streams: Vec<Vec<Planned>> = vec![Vec::new(); n];
    let mut seq = 0u64;
    for k in 0..transmissions {
        let tx = NodeId::new((k % n) as u16);
        // 500 us stagger: frames overlap (2 ms airtime) without the
        // start order across transmissions ever inverting.
        let now = SimTime::from_nanos(500_000 * k as u64);
        for a in plan_arrivals(tx, &positions, now, airtime, &radio) {
            streams[a.receiver.index()].push(Planned {
                tx_id: k as u64,
                power_w: a.power_w,
                start: a.start,
                start_seq: seq,
                end: a.end,
            });
            seq += 1;
        }
    }
    streams
}

/// Replays one receiver's stream through the eager paired protocol:
/// two state operations and a busy probe per sensed frame, exactly what
/// the legacy event queue dispatches. Returns the delivery count.
fn drive_paired(cfg: &RadioConfig, stream: &[Planned]) -> u64 {
    let mut state: ReceiverState = ReceiverState::new(cfg.clone());
    // (time, is_end, index): the boundary order the event queue would pop.
    let mut ops: Vec<(SimTime, bool, usize)> = Vec::with_capacity(stream.len() * 2);
    for (i, p) in stream.iter().enumerate() {
        ops.push((p.start, false, i));
        ops.push((p.end, true, i));
    }
    ops.sort_unstable();
    let mut delivered = 0u64;
    for &(at, is_end, i) in &ops {
        let p = &stream[i];
        if is_end {
            delivered += u64::from(state.arrival_end(p.tx_id, at));
        } else {
            state.arrival_start(p.tx_id, p.power_w, at, p.end);
        }
        black_box(state.busy_until(at, SEQ_MAX));
    }
    delivered
}

/// Replays the same stream through the fused envelope: all arrivals are
/// planned up front, but only decodable frames get boundary + decode
/// operations (with busy probes); sub-RX interference folds lazily inside
/// those probes, never costing an operation of its own.
fn drive_fused(cfg: &RadioConfig, stream: &[Planned]) -> u64 {
    let rx_threshold = cfg.rx_threshold_w;
    let mut state: ReceiverState = ReceiverState::new(cfg.clone());
    for p in stream {
        let decodable = p.power_w >= rx_threshold;
        state.add_pending(PendingArrival {
            tx_id: p.tx_id,
            power_w: p.power_w,
            start: p.start,
            start_seq: p.start_seq,
            end: p.end,
            nav: SimDuration::ZERO,
            needs_decode: decodable,
            start_evented: decodable,
            payload: decodable.then_some(()),
            corrupted: false,
        });
    }
    let mut ops: Vec<(SimTime, bool, usize)> = Vec::new();
    for (i, p) in stream.iter().enumerate() {
        if p.power_w >= rx_threshold {
            ops.push((p.start, false, i));
            ops.push((p.end, true, i));
        }
    }
    ops.sort_unstable();
    let mut delivered = 0u64;
    let mut seq = stream.last().map_or(0, |p| p.start_seq + 1);
    for &(at, is_end, i) in &ops {
        let p = &stream[i];
        if is_end {
            delivered += u64::from(state.decode(p.tx_id, at, seq).is_some());
        } else if state.settle_start(p.tx_id, at, p.start_seq) {
            state.finalize_lock(p.tx_id, seq, false);
        }
        seq += 1;
        black_box(state.busy_until(at, seq));
    }
    // Fold whatever sub-RX tail is still pending (the runner's next MAC
    // input would).
    black_box(state.busy_until(SimTime::from_secs(1e6), seq));
    delivered
}

fn bench_receiver_paths(c: &mut Criterion) {
    let radio = RadioConfig::wavelan();
    for n in [100usize, 400] {
        let streams = workload(n, 64);
        let arrivals: usize = streams.iter().map(Vec::len).sum();
        // The two protocols must agree on outcomes before their costs are
        // worth comparing.
        let check: (u64, u64) = streams
            .iter()
            .map(|s| (drive_paired(&radio, s), drive_fused(&radio, s)))
            .fold((0, 0), |(a, b), (p, f)| (a + p, b + f));
        assert_eq!(check.0, check.1, "paired and fused deliveries diverged at {n} nodes");
        let mut group = c.benchmark_group(format!("receiver_arrivals_{n}_nodes"));
        group.throughput(criterion::Throughput::Elements(arrivals as u64));

        group.bench_function("paired_eager", |b| {
            b.iter(|| {
                let mut delivered = 0u64;
                for s in &streams {
                    delivered += drive_paired(&radio, s);
                }
                black_box(delivered)
            })
        });

        group.bench_function("fused_envelope", |b| {
            b.iter(|| {
                let mut delivered = 0u64;
                for s in &streams {
                    delivered += drive_fused(&radio, s);
                }
                black_box(delivered)
            })
        });

        group.finish();
    }
}

criterion_group!(benches, bench_receiver_paths);
criterion_main!(benches);
