//! Criterion benchmarks for whole simulation runs: how fast the simulator
//! chews through simulated time, per protocol variant.
//!
//! These use deliberately small scenarios (Criterion repeats each run many
//! times); the paper-scale experiments live in the `experiments` crate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dsr::DsrConfig;
use runner::{run_scenario, ScenarioConfig};

fn bench_static_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("static_chain_5_nodes_30s", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig::static_line(5, 200.0, 2.0, DsrConfig::base(), 1);
            black_box(run_scenario(cfg))
        })
    });
    group.finish();
}

fn bench_mobile_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_mobile");
    group.sample_size(10);
    for (name, dsr) in [("base_dsr", DsrConfig::base()), ("dsr_combined", DsrConfig::combined())] {
        group.bench_function(format!("tiny_20_nodes_30s_{name}"), |b| {
            b.iter(|| {
                let cfg = ScenarioConfig::tiny(0.0, 2.0, dsr.clone(), 1);
                black_box(run_scenario(cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static_chain, bench_mobile_variants);
criterion_main!(benches);
