//! Criterion benchmarks for the route-cache data structures — the hot
//! path of every packet event in the simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dsr::cache::RouteCache;
use dsr::{LinkCache, NegativeCache, NegativeCacheConfig, PathCache};
use packet::{Link, Route};
use sim_core::{NodeId, SimDuration, SimTime};

fn n(i: u16) -> NodeId {
    NodeId::new(i)
}

/// A deterministic set of loop-free routes rooted at node 0.
fn synthetic_routes(count: usize, max_hops: usize) -> Vec<Route> {
    let mut routes = Vec::with_capacity(count);
    for i in 0..count {
        let hops = 2 + (i % max_hops.max(1));
        let mut nodes = vec![n(0)];
        for h in 0..hops {
            // Spread across a 200-node id space, avoiding duplicates.
            nodes.push(n((1 + ((i * 31 + h * 7) % 199)) as u16));
        }
        nodes.dedup();
        if let Ok(r) = Route::new(nodes) {
            routes.push(r);
        }
    }
    routes
}

fn filled_path_cache(routes: &[Route]) -> PathCache {
    let mut c = PathCache::new(n(0), 64);
    for r in routes {
        c.insert(r.clone(), SimTime::ZERO);
    }
    c
}

fn bench_path_cache(c: &mut Criterion) {
    let routes = synthetic_routes(64, 6);
    let mut group = c.benchmark_group("path_cache");

    group.bench_function("insert_64_routes", |b| {
        b.iter_batched(
            || PathCache::new(n(0), 64),
            |mut cache| {
                for r in &routes {
                    cache.insert(r.clone(), SimTime::ZERO);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });

    let cache = filled_path_cache(&routes);
    group.bench_function("find_hit", |b| {
        let dst = routes[0].destination();
        b.iter(|| black_box(&cache).find(black_box(dst), SimTime::ZERO))
    });
    group.bench_function("find_miss", |b| {
        b.iter(|| black_box(&cache).find(black_box(n(250)), SimTime::ZERO))
    });

    group.bench_function("remove_link", |b| {
        let link = routes[0].link(0);
        b.iter_batched(
            || filled_path_cache(&routes),
            |mut cache| cache.remove_link(link, SimTime::from_secs(1.0)),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("mark_used", |b| {
        let seen = routes[1].clone();
        b.iter_batched(
            || filled_path_cache(&routes),
            |mut cache| cache.mark_used(&seen, SimTime::from_secs(1.0)),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("expire_sweep", |b| {
        b.iter_batched(
            || filled_path_cache(&routes),
            |mut cache| cache.expire(SimTime::from_secs(100.0), SimDuration::from_secs(10.0)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_link_cache(c: &mut Criterion) {
    let routes = synthetic_routes(64, 6);
    let mut group = c.benchmark_group("link_cache");

    group.bench_function("insert_64_routes", |b| {
        b.iter_batched(
            || LinkCache::new(n(0), 256),
            |mut cache| {
                for r in &routes {
                    cache.insert(r.clone(), SimTime::ZERO);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });

    let mut cache = LinkCache::new(n(0), 256);
    for r in &routes {
        cache.insert(r.clone(), SimTime::ZERO);
    }
    group.bench_function("find_bfs", |b| {
        let dst = routes[7].destination();
        b.iter(|| black_box(&cache).find(black_box(dst), SimTime::ZERO))
    });
    group.finish();
}

fn bench_negative_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("negative_cache");
    group.bench_function("insert_and_lookup", |b| {
        b.iter_batched(
            || NegativeCache::new(NegativeCacheConfig::default()),
            |mut neg| {
                let now = SimTime::from_secs(1.0);
                for i in 0..64u16 {
                    neg.insert(Link::new(n(i), n(i + 1)), now);
                }
                for i in 0..64u16 {
                    black_box(neg.contains(Link::new(n(i), n(i + 1)), now));
                }
                neg
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_path_cache, bench_link_cache, bench_negative_cache);
criterion_main!(benches);
