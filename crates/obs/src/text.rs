//! Shared helpers for the hand-rolled `dsr-timeseries v1` / `dsr-profile v1`
//! text formats.
//!
//! The grammar mirrors `dsr-forensics v1` (see `runner::forensics`): a
//! `format = <name> v<version>` first line, then `key = value` lines; the
//! time-series format additionally carries bare data rows after the header.
//! Keeping the escaping rules identical across all three formats means one
//! query tool ([`crate::query`]) can read any of them.

use std::fmt;

/// Escapes a value so it survives a line-oriented `key = value` format.
///
/// Backslash, newline, carriage return, and space are replaced with `\\`,
/// `\n`, `\r`, and `\s` respectively; everything else passes through.
pub fn escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            ' ' => out.push_str("\\s"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape`]. Unknown escapes decode to the escaped character
/// itself so truncated or hand-edited files degrade gracefully.
pub fn unescape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('s') => out.push(' '),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Renders an `f64` so that parsing it back yields the identical bits
/// (`{:?}` guarantees round-tripping; `{}` does not print a decimal point
/// for whole numbers, which would re-parse as an integer-looking token).
pub fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Reduces a run label to a filesystem-safe stem (matching the forensics
/// artifact naming rule): anything outside `[A-Za-z0-9_-]` becomes `_`.
pub fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect()
}

/// A malformed observability file.
#[derive(Debug)]
pub enum ObsError {
    /// The first line did not announce the expected format/version.
    BadHeader { expected: &'static str, found: String },
    /// A required header key was absent.
    MissingKey(&'static str),
    /// A header key held an unparsable value.
    BadValue { key: String, value: String },
    /// A data row did not match the declared columns.
    BadRow { line_no: usize, line: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::BadHeader { expected, found } => {
                write!(f, "bad header: expected `{expected}`, found `{found}`")
            }
            ObsError::MissingKey(key) => write!(f, "missing key `{key}`"),
            ObsError::BadValue { key, value } => {
                write!(f, "bad value for `{key}`: `{value}`")
            }
            ObsError::BadRow { line_no, line } => {
                write!(f, "bad data row at line {line_no}: `{line}`")
            }
            ObsError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for ObsError {}

impl From<std::io::Error> for ObsError {
    fn from(err: std::io::Error) -> Self {
        ObsError::Io(err)
    }
}

/// An ordered `key = value` header block with indexed lookup.
#[derive(Debug, Default)]
pub struct KvBlock {
    pairs: Vec<(String, String)>,
}

impl KvBlock {
    pub fn new() -> Self {
        KvBlock::default()
    }

    pub fn push(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.pairs.push((key.into(), value.into()));
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.pairs {
            out.push_str(key);
            out.push_str(" = ");
            out.push_str(value);
            out.push('\n');
        }
        out
    }

    /// Parses `key = value` lines; blank lines and `#` comments are skipped,
    /// anything else is handed to `row` (for formats with trailing data
    /// rows). `row` receives the 1-based line number.
    pub fn parse_with_rows(
        text: &str,
        mut row: impl FnMut(usize, &str) -> Result<(), ObsError>,
    ) -> Result<Self, ObsError> {
        let mut block = KvBlock::new();
        for (idx, line) in text.lines().enumerate() {
            let trimmed = line.trim_end();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            match trimmed.split_once(" = ") {
                Some((key, value)) => block.push(key.trim(), value),
                None => row(idx + 1, trimmed)?,
            }
        }
        Ok(block)
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    pub fn require(&self, key: &'static str) -> Result<&str, ObsError> {
        self.get(key).ok_or(ObsError::MissingKey(key))
    }

    pub fn require_parsed<T: std::str::FromStr>(&self, key: &'static str) -> Result<T, ObsError> {
        let raw = self.require(key)?;
        raw.parse().map_err(|_| ObsError::BadValue { key: key.to_string(), value: raw.to_string() })
    }

    /// Fingerprint-style hex `u64` (rendered `{:016x}`).
    pub fn require_hex(&self, key: &'static str) -> Result<u64, ObsError> {
        let raw = self.require(key)?;
        u64::from_str_radix(raw, 16)
            .map_err(|_| ObsError::BadValue { key: key.to_string(), value: raw.to_string() })
    }

    /// Indexed series `prefix.0`, `prefix.1`, ... up to `count`.
    pub fn indexed(&self, prefix: &str, count: usize) -> Result<Vec<&str>, ObsError> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let key = format!("{prefix}.{i}");
            let value = self.get(&key).ok_or(ObsError::MissingKey("indexed entry"))?;
            out.push(value);
        }
        Ok(out)
    }
}

/// Escapes a string for embedding inside a JSON string literal.
pub fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let cases = ["", "plain", "with space", "line\nbreak", "back\\slash", "\r\n \\s"];
        for case in cases {
            assert_eq!(unescape(&escape(case)), case, "case {case:?}");
        }
    }

    #[test]
    fn escaped_values_are_single_token() {
        assert!(!escape("a b\nc").contains(' '));
        assert!(!escape("a b\nc").contains('\n'));
    }

    #[test]
    fn fmt_f64_round_trips_bits() {
        for v in [0.0, 1.0, 0.1, 123.456, 1e-9, f64::MAX] {
            assert_eq!(fmt_f64(v).parse::<f64>().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn kv_block_renders_and_parses() {
        let mut block = KvBlock::new();
        block.push("alpha", "1");
        block.push("beta", "two words");
        let text = block.render();
        let parsed = KvBlock::parse_with_rows(&text, |_, _| unreachable!("no rows")).unwrap();
        assert_eq!(parsed.get("alpha"), Some("1"));
        assert_eq!(parsed.get("beta"), Some("two words"));
        assert_eq!(parsed.require_parsed::<u64>("alpha").unwrap(), 1);
    }

    #[test]
    fn kv_block_hands_rows_to_callback() {
        let text = "format = x v1\n1 2 3\n4 5 6\n";
        let mut rows = Vec::new();
        let block = KvBlock::parse_with_rows(text, |no, line| {
            rows.push((no, line.to_string()));
            Ok(())
        })
        .unwrap();
        assert_eq!(block.get("format"), Some("x v1"));
        assert_eq!(rows, vec![(2, "1 2 3".to_string()), (3, "4 5 6".to_string())]);
    }

    #[test]
    fn missing_key_is_an_error() {
        let block = KvBlock::new();
        assert!(matches!(block.require("absent"), Err(ObsError::MissingKey("absent"))));
    }

    #[test]
    fn sanitize_keeps_only_safe_chars() {
        assert_eq!(sanitize("DSR-WE quick/5"), "DSR-WE_quick_5");
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
