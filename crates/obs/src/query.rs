//! Parsing, filtering, and summarizing of trace lines and observability
//! files — the engine behind the `trace_query` binary.
//!
//! Understands five inputs, detected from the first line:
//!
//! * raw ns-2-flavored trace lines (one [`TraceLine`] per line),
//! * `dsr-forensics v1` artifacts (the escaped `trace.N` tail is extracted),
//! * `dsr-timeseries v1` files,
//! * `dsr-profile v1` files,
//! * `dsr-cachetrace v1` cache-decision traces.
//!
//! The trace grammar matches `runner::trace`'s `Display` impl:
//!
//! ```text
//! s 12.500000 _n5_ MAC RREQ 52B -> *
//! r 12.700000 _n7_ AGT DATA 512B uid 9 src n5
//! D 13.100042 _n9_ RTR NoRouteToSalvage uid 42
//! B 14.000000 _n5_ LL link n5->n2 broken
//! q 14.100000 _n5_ RTR discovery(flood) for n9
//! ```

use crate::cachetrace::CacheTrace;
use crate::profile::Profile;
use crate::text::{unescape, KvBlock, ObsError};
use crate::timeseries::TimeSeries;

/// One parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLine {
    /// The original line, verbatim.
    pub raw: String,
    /// Operation letter: `s`end, `r`eceive, `D`rop, `B`reak, `q`uery.
    pub op: char,
    /// Event time in seconds.
    pub t: f64,
    /// Node index (the `5` in `_n5_`).
    pub node: u64,
    /// Stack layer: `MAC`, `AGT`, `RTR`, or `LL`.
    pub layer: String,
    /// The line's subject: frame/packet kind, drop reason, `link`, or
    /// `discovery(...)`.
    pub what: String,
    /// Packet uid, when the line carries one (`uid N`).
    pub uid: Option<u64>,
}

impl TraceLine {
    fn op_name(op: char) -> &'static str {
        match op {
            's' => "send",
            'r' => "recv",
            'D' => "drop",
            'B' => "break",
            'q' => "discovery",
            _ => "?",
        }
    }
}

/// Parses one trace line; `None` when the line is not in trace format.
pub fn parse_trace_line(line: &str) -> Option<TraceLine> {
    let mut tokens = line.split_whitespace();
    let op_tok = tokens.next()?;
    let mut chars = op_tok.chars();
    let op = chars.next()?;
    if chars.next().is_some() || !matches!(op, 's' | 'r' | 'D' | 'B' | 'q') {
        return None;
    }
    let t: f64 = tokens.next()?.parse().ok()?;
    let node_tok = tokens.next()?;
    let node: u64 = node_tok.strip_prefix("_n")?.strip_suffix('_')?.parse().ok()?;
    let layer = tokens.next()?.to_string();
    let what = tokens.next()?.to_string();
    let rest: Vec<&str> = tokens.collect();
    let uid = rest.windows(2).find(|w| w[0] == "uid").and_then(|w| w[1].parse().ok());
    Some(TraceLine { raw: line.to_string(), op, t, node, layer, what, uid })
}

/// Predicate over trace lines; unset fields match everything.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Filter {
    /// Node index the event must have happened at.
    pub node: Option<u64>,
    /// Required packet uid.
    pub uid: Option<u64>,
    /// Kind, matched case-insensitively against the op name (`send`,
    /// `recv`, `drop`, `break`, `discovery`), the op letter, the layer, or
    /// the line's subject (`RREQ`, `NoRouteToSalvage`, ...).
    pub kind: Option<String>,
    /// Inclusive window start, seconds.
    pub from: Option<f64>,
    /// Inclusive window end, seconds.
    pub to: Option<f64>,
}

impl Filter {
    /// True when no field is set (so every line matches).
    pub fn is_empty(&self) -> bool {
        *self == Filter::default()
    }

    /// Does `line` satisfy every set field?
    pub fn matches(&self, line: &TraceLine) -> bool {
        if self.node.is_some_and(|n| n != line.node) {
            return false;
        }
        if self.uid.is_some() && self.uid != line.uid {
            return false;
        }
        if self.from.is_some_and(|f| line.t < f) || self.to.is_some_and(|t| line.t > t) {
            return false;
        }
        if let Some(kind) = &self.kind {
            let op_letter = line.op.to_string();
            let hit = kind.eq_ignore_ascii_case(TraceLine::op_name(line.op))
                || *kind == op_letter
                || kind.eq_ignore_ascii_case(&line.layer)
                || kind.eq_ignore_ascii_case(&line.what);
            if !hit {
                return false;
            }
        }
        true
    }
}

/// The lifecycle of one packet uid across MAC/RTR/AGT.
#[derive(Debug, Clone, PartialEq)]
pub struct FollowReport {
    /// The followed uid.
    pub uid: u64,
    /// Every matching line, in file order.
    pub lines: Vec<String>,
    /// One-line human summary of the lifecycle.
    pub summary: String,
}

/// Follows `uid` through `lines`; `None` when the uid never appears.
pub fn follow_uid(lines: &[TraceLine], uid: u64) -> Option<FollowReport> {
    let hits: Vec<&TraceLine> = lines.iter().filter(|l| l.uid == Some(uid)).collect();
    let first = hits.first()?;
    let mac_sends = hits.iter().filter(|l| l.op == 's').count();
    let terminal = hits.iter().rev().find(|l| l.op == 'r' || l.op == 'D');
    let outcome = match terminal {
        Some(l) if l.op == 'r' => format!("delivered at {:.6}s by n{}", l.t, l.node),
        Some(l) => format!("dropped ({}) at {:.6}s by n{}", l.what, l.t, l.node),
        None => "no terminal event (still in flight at trace end)".to_string(),
    };
    let summary = format!(
        "uid {uid}: first seen {:.6}s at n{}; {mac_sends} MAC transmission{}; {outcome}",
        first.t,
        first.node,
        if mac_sends == 1 { "" } else { "s" },
    );
    Some(FollowReport { uid, lines: hits.iter().map(|l| l.raw.clone()).collect(), summary })
}

/// A parsed observability input file.
#[derive(Debug)]
pub enum ObsFile {
    /// Raw trace lines, or the trace tail of a forensic artifact.
    Trace(Vec<TraceLine>),
    /// A `dsr-timeseries v1` file.
    TimeSeries(TimeSeries),
    /// A `dsr-profile v1` file.
    Profile(Profile),
    /// A `dsr-cachetrace v1` cache-decision trace.
    CacheTrace(CacheTrace),
}

/// Detects and parses any supported input text.
pub fn read_file(text: &str) -> Result<ObsFile, ObsError> {
    let first = text.lines().find(|l| !l.trim().is_empty() && !l.starts_with('#'));
    let Some(first) = first else {
        return Ok(ObsFile::Trace(Vec::new()));
    };
    if let Some(format) = first.strip_prefix("format = ") {
        if format == crate::timeseries::FORMAT_HEADER {
            return Ok(ObsFile::TimeSeries(TimeSeries::parse(text)?));
        }
        if format == crate::profile::FORMAT_HEADER {
            return Ok(ObsFile::Profile(Profile::parse(text)?));
        }
        if format == crate::cachetrace::FORMAT_HEADER {
            return Ok(ObsFile::CacheTrace(CacheTrace::parse(text)?));
        }
        if format.starts_with("dsr-forensics") {
            return Ok(ObsFile::Trace(forensic_trace_tail(text)?));
        }
        return Err(ObsError::BadHeader {
            expected: "a dsr-timeseries/dsr-profile/dsr-forensics header or raw trace lines",
            found: format.to_string(),
        });
    }
    let mut lines = Vec::new();
    let mut saw_content = false;
    for line in text.lines() {
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        saw_content = true;
        if let Some(parsed) = parse_trace_line(line) {
            lines.push(parsed);
        }
    }
    if saw_content && lines.is_empty() {
        return Err(ObsError::BadRow { line_no: 1, line: first.to_string() });
    }
    Ok(ObsFile::Trace(lines))
}

/// Extracts and parses the escaped `trace.N` tail of a `dsr-forensics v1`
/// artifact (the forensics format shares this crate's escaping rules).
fn forensic_trace_tail(text: &str) -> Result<Vec<TraceLine>, ObsError> {
    let block = KvBlock::parse_with_rows(text, |line_no, line| {
        Err(ObsError::BadRow { line_no, line: line.to_string() })
    })?;
    let count: usize = block.require_parsed("trace.count")?;
    let mut lines = Vec::with_capacity(count);
    for raw in block.indexed("trace", count)? {
        let line = unescape(raw);
        if let Some(parsed) = parse_trace_line(&line) {
            lines.push(parsed);
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
s 1.000000 _n0_ MAC RREQ 52B -> *
s 1.100000 _n0_ MAC DATA 584B -> n1 uid 42
r 1.100500 _n1_ AGT DATA 512B uid 42 src n0
D 2.000000 _n3_ RTR NoRouteToSalvage uid 7
B 2.500000 _n0_ LL link n0->n1 broken
q 2.600000 _n0_ RTR discovery(flood) for n1
";

    fn parsed() -> Vec<TraceLine> {
        SAMPLE.lines().map(|l| parse_trace_line(l).expect("parses")).collect()
    }

    #[test]
    fn parses_all_five_line_shapes() {
        let lines = parsed();
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0].op, 's');
        assert_eq!(lines[0].node, 0);
        assert_eq!(lines[0].layer, "MAC");
        assert_eq!(lines[0].what, "RREQ");
        assert_eq!(lines[0].uid, None);
        assert_eq!(lines[1].uid, Some(42));
        assert_eq!(lines[2].op, 'r');
        assert_eq!(lines[3].what, "NoRouteToSalvage");
        assert_eq!(lines[4].what, "link");
        assert_eq!(lines[5].what, "discovery(flood)");
        assert!((lines[5].t - 2.6).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_trace_lines() {
        assert!(parse_trace_line("hello world").is_none());
        assert!(parse_trace_line("format = dsr-profile v1").is_none());
        assert!(parse_trace_line("s notatime _n0_ MAC RTS").is_none());
        assert!(parse_trace_line("x 1.0 _n0_ MAC RTS 20B -> n1").is_none());
    }

    #[test]
    fn filter_fields_compose() {
        let lines = parsed();
        let by_node = Filter { node: Some(0), ..Filter::default() };
        assert_eq!(lines.iter().filter(|l| by_node.matches(l)).count(), 4);
        let by_uid = Filter { uid: Some(42), ..Filter::default() };
        assert_eq!(lines.iter().filter(|l| by_uid.matches(l)).count(), 2);
        let by_kind = Filter { kind: Some("drop".into()), ..Filter::default() };
        assert_eq!(lines.iter().filter(|l| by_kind.matches(l)).count(), 1);
        let by_what = Filter { kind: Some("rreq".into()), ..Filter::default() };
        assert_eq!(lines.iter().filter(|l| by_what.matches(l)).count(), 1);
        let window = Filter { from: Some(1.05), to: Some(2.0), ..Filter::default() };
        assert_eq!(lines.iter().filter(|l| window.matches(l)).count(), 3);
        let both = Filter { node: Some(0), uid: Some(42), ..Filter::default() };
        assert_eq!(lines.iter().filter(|l| both.matches(l)).count(), 1);
    }

    #[test]
    fn follow_summarizes_delivery_and_drop() {
        let lines = parsed();
        let delivered = follow_uid(&lines, 42).expect("uid 42 present");
        assert_eq!(delivered.lines.len(), 2);
        assert!(delivered.summary.contains("1 MAC transmission;"));
        assert!(delivered.summary.contains("delivered at 1.100500s by n1"));
        let dropped = follow_uid(&lines, 7).expect("uid 7 present");
        assert!(dropped.summary.contains("dropped (NoRouteToSalvage)"));
        assert!(follow_uid(&lines, 999).is_none());
    }

    #[test]
    fn read_file_detects_each_format() {
        assert!(matches!(read_file(SAMPLE), Ok(ObsFile::Trace(v)) if v.len() == 6));
        let ts = crate::timeseries::TimeSeries {
            label: "DSR".into(),
            seed: 1,
            fingerprint: 2,
            interval_ns: 1_000_000_000,
            rows: vec![],
        };
        assert!(matches!(read_file(&ts.render()), Ok(ObsFile::TimeSeries(_))));
        let profile = Profile { runs: 1, ..Profile::default() };
        assert!(matches!(read_file(&profile.render()), Ok(ObsFile::Profile(p)) if p.runs == 1));
        let ct = crate::cachetrace::CacheTrace {
            label: "DSR".into(),
            seed: 1,
            fingerprint: 2,
            rows: vec![],
            dropped: 0,
        };
        assert!(matches!(read_file(&ct.render()), Ok(ObsFile::CacheTrace(c)) if c.seed == 1));
        assert!(matches!(read_file(""), Ok(ObsFile::Trace(v)) if v.is_empty()));
    }

    #[test]
    fn read_file_rejects_garbage() {
        assert!(read_file("definitely not a trace\nor anything else\n").is_err());
        assert!(read_file("format = dsr-mystery v1\n").is_err());
    }

    #[test]
    fn forensic_tail_is_extracted_and_unescaped() {
        let artifact = "format = dsr-forensics v1\nlabel = DSR\ntrace.count = 2\n\
                        trace.0 = s\\s1.000000\\s_n0_\\sMAC\\sRTS\\s20B\\s->\\sn1\n\
                        trace.1 = D\\s2.000000\\s_n3_\\sRTR\\sNoRoute\\suid\\s7\n";
        let parsed = read_file(artifact).unwrap();
        match parsed {
            ObsFile::Trace(lines) => {
                assert_eq!(lines.len(), 2);
                assert_eq!(lines[0].what, "RTS");
                assert_eq!(lines[1].uid, Some(7));
            }
            other => panic!("expected trace tail, got {other:?}"),
        }
    }
}
