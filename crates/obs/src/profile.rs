//! The `dsr-profile v1` event-loop profile: events and wall-time per event
//! kind, plus drop-reason and trace-kind tallies, merged across a campaign.
//!
//! Per-run profiles are collected by the runner's event loop (wall-clock
//! timing never feeds back into simulated time, so profiling cannot perturb
//! results) and merged into one campaign-level summary:
//!
//! ```text
//! format = dsr-profile v1
//! runs = 10
//! runs_failed = 0
//! sim_seconds = 1200.0
//! wall_seconds = 45.183
//! events = 18433204
//! dispatched = 18433204
//! scheduled = 19001771
//! cancelled = 568567
//! kinds = 2
//! kind.0 = agent_timer 9120411 21930114312
//! kind.1 = mac_timer 8101233 1801238971
//! drops = 1
//! drop.0 = NoRoute 1203
//! traces = 1
//! trace.0 = mac_send 9121
//! ```
//!
//! `kind.N` lines are `name count wall_ns`; `drop.N`/`trace.N` are
//! `name count`. All three lists are sorted by name at render time so the
//! summary is independent of merge order across campaign threads.

use crate::text::{fmt_f64, json_escape, KvBlock, ObsError};
use std::collections::BTreeMap;
use std::path::Path;

/// First line of every profile file.
pub const FORMAT_HEADER: &str = "dsr-profile v1";

/// A named counter with optional accumulated wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tally {
    pub name: String,
    pub count: u64,
    /// Wall nanoseconds attributed to this name (zero for drop/trace
    /// tallies, which count occurrences only).
    pub wall_ns: u64,
}

/// An event-loop profile for one run, or the merge of many.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Runs merged into this profile (successful ones).
    pub runs: u64,
    /// Runs that failed and contributed no timing data.
    pub runs_failed: u64,
    /// Total simulated seconds across merged runs.
    pub sim_seconds: f64,
    /// Total wall-clock seconds spent inside `try_run` across merged runs.
    pub wall_seconds: f64,
    /// Logical events processed: queue dispatches plus arrival boundaries
    /// the PHY envelope absorbed inline without a queue event — the
    /// workload-comparable figure across planner generations.
    pub events: u64,
    /// Events actually popped from the queue (sum of `EventQueue::popped`).
    pub dispatched: u64,
    /// Events scheduled (sum of `EventQueue::scheduled`), including ones
    /// later cancelled.
    pub scheduled: u64,
    /// Scheduled events that never dispatched (cancelled timers plus the
    /// queue remainder at the horizon) — the re-arm churn future PRs can
    /// attack.
    pub cancelled: u64,
    /// Runs that executed on the paired arrival path (explicit opt-out of
    /// the fused envelope, via `DSR_PAIRED_ARRIVALS=1` or a direct
    /// `set_paired_arrivals(true)`). Zero on healthy campaigns — CI gates
    /// on it so a silent fallback cannot satisfy the fused-share check.
    pub paired_runs: u64,
    /// Per-event-kind dispatch counts and wall time.
    pub kinds: Vec<Tally>,
    /// Per-drop-reason occurrence counts.
    pub drops: Vec<Tally>,
    /// Per-trace-kind emission counts (counted whether or not a trace sink
    /// is attached).
    pub traces: Vec<Tally>,
}

fn merge_tallies(into: &mut Vec<Tally>, from: &[Tally]) {
    for tally in from {
        match into.iter_mut().find(|t| t.name == tally.name) {
            Some(existing) => {
                existing.count += tally.count;
                existing.wall_ns += tally.wall_ns;
            }
            None => into.push(tally.clone()),
        }
    }
}

fn sorted(mut tallies: Vec<Tally>) -> Vec<Tally> {
    tallies.sort_by(|a, b| a.name.cmp(&b.name));
    tallies
}

impl Profile {
    /// Folds another profile (typically one run's) into this one.
    pub fn merge(&mut self, other: &Profile) {
        self.runs += other.runs;
        self.runs_failed += other.runs_failed;
        self.sim_seconds += other.sim_seconds;
        self.wall_seconds += other.wall_seconds;
        self.events += other.events;
        self.dispatched += other.dispatched;
        self.scheduled += other.scheduled;
        self.cancelled += other.cancelled;
        self.paired_runs += other.paired_runs;
        merge_tallies(&mut self.kinds, &other.kinds);
        merge_tallies(&mut self.drops, &other.drops);
        merge_tallies(&mut self.traces, &other.traces);
    }

    /// Events dispatched per wall second; `0.0` when no wall time was
    /// recorded.
    pub fn events_per_wall_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Fraction of scheduled events that never dispatched; `0.0` when
    /// nothing was scheduled.
    pub fn cancel_ratio(&self) -> f64 {
        if self.scheduled > 0 {
            self.cancelled as f64 / self.scheduled as f64
        } else {
            0.0
        }
    }

    /// Renders the `dsr-profile v1` text form; tally lists are name-sorted.
    pub fn render(&self) -> String {
        let mut block = KvBlock::new();
        block.push("format", FORMAT_HEADER);
        block.push("runs", self.runs.to_string());
        block.push("runs_failed", self.runs_failed.to_string());
        block.push("sim_seconds", fmt_f64(self.sim_seconds));
        block.push("wall_seconds", fmt_f64(self.wall_seconds));
        block.push("events", self.events.to_string());
        block.push("dispatched", self.dispatched.to_string());
        block.push("scheduled", self.scheduled.to_string());
        block.push("cancelled", self.cancelled.to_string());
        block.push("paired_runs", self.paired_runs.to_string());
        for (prefix, tallies) in
            [("kind", &self.kinds), ("drop", &self.drops), ("trace", &self.traces)]
        {
            let tallies = sorted(tallies.clone());
            block.push(format!("{prefix}s"), tallies.len().to_string());
            for (i, t) in tallies.iter().enumerate() {
                let line = if prefix == "kind" {
                    format!("{} {} {}", t.name, t.count, t.wall_ns)
                } else {
                    format!("{} {}", t.name, t.count)
                };
                block.push(format!("{prefix}.{i}"), line);
            }
        }
        block.render()
    }

    /// Parses a rendered profile.
    pub fn parse(text: &str) -> Result<Profile, ObsError> {
        let block = KvBlock::parse_with_rows(text, |line_no, line| {
            Err(ObsError::BadRow { line_no, line: line.to_string() })
        })?;
        let format = block.require("format")?;
        if format != FORMAT_HEADER {
            return Err(ObsError::BadHeader { expected: FORMAT_HEADER, found: format.to_string() });
        }
        let parse_tallies = |prefix: &'static str,
                             with_wall: bool|
         -> Result<Vec<Tally>, ObsError> {
            let count: usize = block.require_parsed(match prefix {
                "kind" => "kinds",
                "drop" => "drops",
                _ => "traces",
            })?;
            let mut out = Vec::with_capacity(count);
            for raw in block.indexed(prefix, count)? {
                let bad = || ObsError::BadValue { key: prefix.to_string(), value: raw.to_string() };
                let mut parts = raw.split_whitespace();
                let name = parts.next().ok_or_else(bad)?.to_string();
                let count: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                let wall_ns: u64 = if with_wall {
                    parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?
                } else {
                    0
                };
                if parts.next().is_some() {
                    return Err(bad());
                }
                out.push(Tally { name, count, wall_ns });
            }
            Ok(out)
        };
        let events: u64 = block.require_parsed("events")?;
        let scheduled: u64 = block.require_parsed("scheduled")?;
        // Optional with backwards-compatible defaults: profiles written
        // before the envelope planner had no inline boundaries (dispatched
        // == events) and every schedule/dispatch gap was cancellation.
        let opt_u64 = |key: &'static str, default: u64| -> Result<u64, ObsError> {
            match block.get(key) {
                Some(raw) => raw.parse().map_err(|_| ObsError::BadValue {
                    key: key.to_string(),
                    value: raw.to_string(),
                }),
                None => Ok(default),
            }
        };
        Ok(Profile {
            runs: block.require_parsed("runs")?,
            runs_failed: block.require_parsed("runs_failed")?,
            sim_seconds: block.require_parsed("sim_seconds")?,
            wall_seconds: block.require_parsed("wall_seconds")?,
            events,
            dispatched: opt_u64("dispatched", events)?,
            scheduled,
            cancelled: opt_u64("cancelled", scheduled.saturating_sub(events))?,
            // Pre-fault-injection profiles had no fallback counter; absence
            // means no run ever opted out of the fused path.
            paired_runs: opt_u64("paired_runs", 0)?,
            kinds: parse_tallies("kind", true)?,
            drops: parse_tallies("drop", false)?,
            traces: parse_tallies("trace", false)?,
        })
    }

    /// Loads and parses a profile from disk.
    pub fn load(path: &Path) -> Result<Profile, ObsError> {
        Profile::parse(&std::fs::read_to_string(path)?)
    }

    /// Renders the profile as a `BENCH_*.json` document (hand-rolled; the
    /// workspace deliberately has no serde).
    pub fn to_bench_json(&self, name: &str) -> String {
        let tally_array = |tallies: &[Tally], with_wall: bool| -> String {
            let items: Vec<String> = sorted(tallies.to_vec())
                .iter()
                .map(|t| {
                    if with_wall {
                        format!(
                            "    {{\"name\": \"{}\", \"count\": {}, \"wall_ns\": {}}}",
                            json_escape(&t.name),
                            t.count,
                            t.wall_ns
                        )
                    } else {
                        format!(
                            "    {{\"name\": \"{}\", \"count\": {}}}",
                            json_escape(&t.name),
                            t.count
                        )
                    }
                })
                .collect();
            if items.is_empty() {
                "[]".to_string()
            } else {
                format!("[\n{}\n  ]", items.join(",\n"))
            }
        };
        format!(
            "{{\n  \"schema\": \"{schema}\",\n  \"name\": \"{name}\",\n  \"runs\": {runs},\n  \
             \"runs_failed\": {failed},\n  \"sim_seconds\": {sim},\n  \"wall_seconds\": {wall},\n  \
             \"events\": {events},\n  \"dispatched\": {dispatched},\n  \
             \"scheduled\": {scheduled},\n  \"cancelled\": {cancelled},\n  \
             \"paired_runs\": {paired_runs},\n  \
             \"cancel_ratio\": {cancel_ratio},\n  \
             \"events_per_wall_second\": {rate},\n  \"kinds\": {kinds},\n  \"drops\": {drops},\n  \
             \"traces\": {traces}\n}}\n",
            schema = FORMAT_HEADER,
            name = json_escape(name),
            runs = self.runs,
            failed = self.runs_failed,
            sim = fmt_f64(self.sim_seconds),
            wall = fmt_f64(self.wall_seconds),
            events = self.events,
            dispatched = self.dispatched,
            scheduled = self.scheduled,
            cancelled = self.cancelled,
            paired_runs = self.paired_runs,
            cancel_ratio = fmt_f64(self.cancel_ratio()),
            rate = fmt_f64(self.events_per_wall_second()),
            kinds = tally_array(&self.kinds, true),
            drops = tally_array(&self.drops, false),
            traces = tally_array(&self.traces, false),
        )
    }
}

/// Builds name-keyed tallies incrementally (used by the runner while the
/// event loop executes, then converted into [`Profile`] lists).
#[derive(Debug, Default)]
pub struct TallyMap {
    counts: BTreeMap<&'static str, (u64, u64)>,
}

impl TallyMap {
    pub fn new() -> Self {
        TallyMap::default()
    }

    /// Adds one occurrence with optional wall time.
    pub fn record(&mut self, name: &'static str, wall_ns: u64) {
        let slot = self.counts.entry(name).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += wall_ns;
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Converts into sorted `Tally` entries (BTreeMap iteration is already
    /// name-ordered).
    pub fn into_tallies(self) -> Vec<Tally> {
        self.counts
            .into_iter()
            .map(|(name, (count, wall_ns))| Tally { name: name.to_string(), count, wall_ns })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_run() -> Profile {
        Profile {
            runs: 1,
            runs_failed: 0,
            sim_seconds: 120.0,
            wall_seconds: 1.5,
            events: 1000,
            dispatched: 990,
            scheduled: 1100,
            cancelled: 104,
            paired_runs: 0,
            kinds: vec![
                Tally { name: "mac_timer".into(), count: 600, wall_ns: 900_000 },
                Tally { name: "agent_timer".into(), count: 400, wall_ns: 600_000 },
            ],
            drops: vec![Tally { name: "NoRoute".into(), count: 3, wall_ns: 0 }],
            traces: vec![Tally { name: "mac_send".into(), count: 600, wall_ns: 0 }],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let profile = one_run();
        let text = profile.render();
        let parsed = Profile::parse(&text).unwrap();
        // Lists are name-sorted by render, so compare re-rendered forms.
        assert_eq!(parsed.render(), text);
        assert_eq!(parsed.events, 1000);
        assert_eq!(parsed.kinds.len(), 2);
        assert_eq!(parsed.kinds[0].name, "agent_timer");
        assert_eq!(parsed.kinds[0].wall_ns, 600_000);
    }

    #[test]
    fn merge_sums_counts_and_unions_names() {
        let mut total = Profile::default();
        total.merge(&one_run());
        let mut second = one_run();
        second.drops = vec![Tally { name: "IfqFull".into(), count: 1, wall_ns: 0 }];
        total.merge(&second);
        assert_eq!(total.runs, 2);
        assert_eq!(total.events, 2000);
        assert_eq!(total.kinds.iter().find(|t| t.name == "mac_timer").unwrap().count, 1200);
        assert_eq!(total.drops.len(), 2);
    }

    #[test]
    fn events_per_wall_second_handles_zero_wall() {
        assert_eq!(Profile::default().events_per_wall_second(), 0.0);
        assert!((one_run().events_per_wall_second() - 1000.0 / 1.5).abs() < 1e-9);
    }

    #[test]
    fn cancel_ratio_handles_zero_scheduled() {
        assert_eq!(Profile::default().cancel_ratio(), 0.0);
        assert!((one_run().cancel_ratio() - 104.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn parse_defaults_pre_envelope_profiles() {
        // Profiles written before `dispatched`/`cancelled` existed must
        // still load, with every dispatch attributed to the queue and the
        // whole schedule gap to cancellation.
        let mut legacy = one_run().render();
        legacy = legacy
            .lines()
            .filter(|l| !l.starts_with("dispatched =") && !l.starts_with("cancelled ="))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = Profile::parse(&legacy).unwrap();
        assert_eq!(parsed.dispatched, 1000);
        assert_eq!(parsed.cancelled, 100);
    }

    #[test]
    fn paired_runs_defaults_merges_and_round_trips() {
        // Pre-fault-injection profiles carry no fallback counter.
        let legacy = one_run()
            .render()
            .lines()
            .filter(|l| !l.starts_with("paired_runs ="))
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(Profile::parse(&legacy).unwrap().paired_runs, 0);

        let mut total = Profile::default();
        let mut pinned = one_run();
        pinned.paired_runs = 1;
        total.merge(&pinned);
        total.merge(&one_run());
        assert_eq!(total.paired_runs, 1, "merge sums fallback runs");

        let reparsed = Profile::parse(&total.render()).unwrap();
        assert_eq!(reparsed.paired_runs, 1);
        assert!(total.to_bench_json("x").contains("\"paired_runs\": 1"));
    }

    #[test]
    fn bench_json_is_well_formed_enough() {
        let json = one_run().to_bench_json("table3_cache_quick");
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"dsr-profile v1\""));
        assert!(json.contains("\"name\": \"table3_cache_quick\""));
        assert!(json.contains("\"wall_ns\": 900000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn parse_rejects_malformed_profiles() {
        assert!(Profile::parse("format = dsr-timeseries v1\n").is_err());
        let good = one_run().render();
        assert!(Profile::parse(
            &good.replace("kind.0 = agent_timer 400 600000", "kind.0 = broken")
        )
        .is_err());
        assert!(Profile::parse(&good.replace("kinds = 2", "kinds = 3")).is_err());
        assert!(Profile::parse("format = dsr-profile v1\nstray row\n").is_err());
    }

    #[test]
    fn tally_map_accumulates_and_sorts() {
        let mut map = TallyMap::new();
        map.record("b", 10);
        map.record("a", 5);
        map.record("b", 2);
        let tallies = map.into_tallies();
        assert_eq!(tallies.len(), 2);
        assert_eq!(tallies[0].name, "a");
        assert_eq!(tallies[1], Tally { name: "b".into(), count: 2, wall_ns: 12 });
    }
}
