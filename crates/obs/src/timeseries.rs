//! The `dsr-timeseries v1` per-run gauge file and the sampler that fills it.
//!
//! One file is written per (scenario, seed) run when sampling is enabled.
//! The header is `key = value` lines (same grammar as `dsr-forensics v1`),
//! followed by one space-separated data row per sample boundary:
//!
//! ```text
//! format = dsr-timeseries v1
//! label = DSR
//! seed = 1
//! fingerprint = 00805db0365eff10
//! interval_ns = 5000000000
//! columns = t_s cache_entries cache_valid negative_entries send_buffer ifq_control ifq_data discoveries events
//! rows = 2
//! 0.000000 0 0 0 0 0 0 0 0
//! 5.000000 12 9 1 0 0 2 1 4821
//! ```
//!
//! Every gauge is an aggregate count summed over all nodes, so row content
//! is independent of per-node iteration order (the link cache's internal
//! `HashMap` iterates nondeterministically, but a *count* of its entries is
//! stable). Rows are stamped with the sample-boundary time, not the event
//! time that triggered the sample, so files from identical (config, seed)
//! pairs are byte-identical.

use crate::text::{escape, sanitize, unescape, KvBlock, ObsError};
use sim_core::{SimDuration, SimTime};
use std::path::{Path, PathBuf};

/// First line of every time-series file.
pub const FORMAT_HEADER: &str = "dsr-timeseries v1";

/// Space-separated column names, in row order.
pub const COLUMNS: &[&str] = &[
    "t_s",
    "cache_entries",
    "cache_valid",
    "negative_entries",
    "send_buffer",
    "ifq_control",
    "ifq_data",
    "discoveries",
    "events",
];

/// One sampled snapshot of the simulation's per-layer gauges, summed over
/// all nodes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleRow {
    /// Sample-boundary time in seconds (a multiple of the interval).
    pub t_s: f64,
    /// Route-cache entries across all nodes (path entries, or links for a
    /// link cache).
    pub cache_entries: u64,
    /// The subset of `cache_entries` the mobility oracle deems currently
    /// usable end-to-end.
    pub cache_valid: u64,
    /// Live negative-cache entries across all nodes.
    pub negative_entries: u64,
    /// Packets parked in DSR send buffers awaiting a route.
    pub send_buffer: u64,
    /// Frames queued in MAC interface queues at control priority.
    pub ifq_control: u64,
    /// Frames queued in MAC interface queues at data priority.
    pub ifq_data: u64,
    /// Route discoveries currently in flight across all nodes.
    pub discoveries: u64,
    /// Events dispatched by the simulator so far.
    pub events: u64,
}

impl SampleRow {
    fn render(&self) -> String {
        format!(
            "{:.6} {} {} {} {} {} {} {} {}",
            self.t_s,
            self.cache_entries,
            self.cache_valid,
            self.negative_entries,
            self.send_buffer,
            self.ifq_control,
            self.ifq_data,
            self.discoveries,
            self.events
        )
    }

    fn parse(line_no: usize, line: &str) -> Result<SampleRow, ObsError> {
        let bad = || ObsError::BadRow { line_no, line: line.to_string() };
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != COLUMNS.len() {
            return Err(bad());
        }
        let t_s: f64 = fields[0].parse().map_err(|_| bad())?;
        let mut ints = [0u64; 8];
        for (slot, raw) in ints.iter_mut().zip(&fields[1..]) {
            *slot = raw.parse().map_err(|_| bad())?;
        }
        Ok(SampleRow {
            t_s,
            cache_entries: ints[0],
            cache_valid: ints[1],
            negative_entries: ints[2],
            send_buffer: ints[3],
            ifq_control: ints[4],
            ifq_data: ints[5],
            discoveries: ints[6],
            events: ints[7],
        })
    }
}

/// A complete per-run time series: identification header plus sampled rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Scenario label (e.g. `DSR-AE`).
    pub label: String,
    /// The run's RNG seed.
    pub seed: u64,
    /// `config_fingerprint` of the scenario (seed excluded), for matching
    /// series to journals and forensic artifacts.
    pub fingerprint: u64,
    /// Sampling interval in simulated nanoseconds.
    pub interval_ns: u64,
    /// Sampled rows in time order.
    pub rows: Vec<SampleRow>,
}

impl TimeSeries {
    /// Renders the full file, header and rows.
    pub fn render(&self) -> String {
        let mut block = KvBlock::new();
        block.push("format", FORMAT_HEADER);
        block.push("label", escape(&self.label));
        block.push("seed", self.seed.to_string());
        block.push("fingerprint", format!("{:016x}", self.fingerprint));
        block.push("interval_ns", self.interval_ns.to_string());
        block.push("columns", COLUMNS.join(" "));
        block.push("rows", self.rows.len().to_string());
        let mut out = block.render();
        for row in &self.rows {
            out.push_str(&row.render());
            out.push('\n');
        }
        out
    }

    /// Parses a rendered time series, validating header and row shape.
    pub fn parse(text: &str) -> Result<TimeSeries, ObsError> {
        let mut rows = Vec::new();
        let block = KvBlock::parse_with_rows(text, |line_no, line| {
            rows.push(SampleRow::parse(line_no, line)?);
            Ok(())
        })?;
        let format = block.require("format")?;
        if format != FORMAT_HEADER {
            return Err(ObsError::BadHeader { expected: FORMAT_HEADER, found: format.to_string() });
        }
        let declared: usize = block.require_parsed("rows")?;
        if declared != rows.len() {
            return Err(ObsError::BadValue {
                key: "rows".to_string(),
                value: format!("declared {declared}, found {}", rows.len()),
            });
        }
        Ok(TimeSeries {
            label: unescape(block.require("label")?),
            seed: block.require_parsed("seed")?,
            fingerprint: block.require_hex("fingerprint")?,
            interval_ns: block.require_parsed("interval_ns")?,
            rows,
        })
    }

    /// Canonical file name: `<label>_<fingerprint>_seed<seed>.timeseries`,
    /// label sanitized the same way as forensic artifacts.
    pub fn file_name(&self) -> String {
        format!("{}_{:016x}_seed{}.timeseries", sanitize(&self.label), self.fingerprint, self.seed)
    }

    /// Writes the series into `dir` (created if needed) under
    /// [`TimeSeries::file_name`]; returns the full path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Loads and parses a series from disk.
    pub fn load(path: &Path) -> Result<TimeSeries, ObsError> {
        TimeSeries::parse(&std::fs::read_to_string(path)?)
    }

    /// Rows whose boundary time falls in `[from, to]` (either bound may be
    /// `None` for open-ended).
    pub fn rows_in_window(&self, from: Option<f64>, to: Option<f64>) -> Vec<&SampleRow> {
        self.rows
            .iter()
            .filter(|r| from.is_none_or(|f| r.t_s >= f) && to.is_none_or(|t| r.t_s <= t))
            .collect()
    }
}

/// Incremental builder driven by the runner's event loop.
///
/// The runner calls [`Sampler::due`] before dispatching each event and, for
/// every elapsed boundary, collects gauges and calls [`Sampler::push`]. The
/// boundary clock advances in exact integer-nanosecond steps so float error
/// can never skew row timestamps.
#[derive(Debug)]
pub struct Sampler {
    interval: SimDuration,
    next: SimTime,
    series: TimeSeries,
}

impl Sampler {
    /// Creates a sampler whose first boundary is `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(
        label: impl Into<String>,
        seed: u64,
        fingerprint: u64,
        interval: SimDuration,
    ) -> Self {
        assert!(interval > SimDuration::ZERO, "sampling interval must be positive");
        Sampler {
            interval,
            next: SimTime::ZERO,
            series: TimeSeries {
                label: label.into(),
                seed,
                fingerprint,
                interval_ns: interval.as_nanos(),
                rows: Vec::new(),
            },
        }
    }

    /// True when at least one boundary is due at or before `at`.
    pub fn due(&self, at: SimTime) -> bool {
        self.next <= at
    }

    /// The next boundary's timestamp; rows pushed now are stamped with it.
    pub fn boundary(&self) -> SimTime {
        self.next
    }

    /// Records the gauges for the current boundary and advances to the next.
    /// The row's `t_s` is overwritten with the boundary time.
    pub fn push(&mut self, mut row: SampleRow) {
        row.t_s = self.next.as_secs();
        self.series.rows.push(row);
        self.next += self.interval;
    }

    /// Finalizes the series. Row timestamps render at fixed `{:.6}`
    /// precision (microseconds), which is exact for any boundary of a
    /// microsecond-aligned interval.
    pub fn finish(self) -> TimeSeries {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> TimeSeries {
        let mut sampler =
            Sampler::new("DSR-AE", 7, 0xDEAD_BEEF_0123_4567, SimDuration::from_secs(5.0));
        assert!(sampler.due(SimTime::ZERO));
        sampler.push(SampleRow { events: 0, ..SampleRow::default() });
        assert!(!sampler.due(SimTime::from_secs(4.9)));
        assert!(sampler.due(SimTime::from_secs(5.0)));
        sampler.push(SampleRow {
            cache_entries: 12,
            cache_valid: 9,
            negative_entries: 1,
            ifq_control: 2,
            ifq_data: 1,
            discoveries: 1,
            events: 4821,
            ..SampleRow::default()
        });
        sampler.finish()
    }

    #[test]
    fn render_parse_round_trips_byte_identically() {
        let series = sample_series();
        let text = series.render();
        let parsed = TimeSeries::parse(&text).unwrap();
        assert_eq!(parsed, series);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn rows_are_stamped_with_boundary_times() {
        let series = sample_series();
        assert_eq!(series.rows[0].t_s, 0.0);
        assert_eq!(series.rows[1].t_s, 5.0);
        assert_eq!(series.interval_ns, 5_000_000_000);
    }

    #[test]
    fn file_name_is_sanitized_and_unique_per_seed() {
        let series = sample_series();
        assert_eq!(series.file_name(), "DSR-AE_deadbeef01234567_seed7.timeseries");
    }

    #[test]
    fn window_filter_is_inclusive() {
        let series = sample_series();
        assert_eq!(series.rows_in_window(None, None).len(), 2);
        assert_eq!(series.rows_in_window(Some(0.1), None).len(), 1);
        assert_eq!(series.rows_in_window(None, Some(4.9)).len(), 1);
        assert_eq!(series.rows_in_window(Some(5.0), Some(5.0)).len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(TimeSeries::parse("format = wrong v9\nrows = 0\n").is_err());
        let series = sample_series();
        let mut text = series.render();
        text.push_str("1.0 2 3\n"); // short row
        assert!(TimeSeries::parse(&text).is_err());
        // Row-count mismatch.
        let text = series.render().replace("rows = 2", "rows = 3");
        assert!(TimeSeries::parse(&text).is_err());
    }

    #[test]
    fn write_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("obs_ts_{}", std::process::id()));
        let series = sample_series();
        let path = series.write_to(&dir).unwrap();
        let loaded = TimeSeries::load(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(loaded, series);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_panics() {
        let _ = Sampler::new("x", 0, 0, SimDuration::ZERO);
    }
}
