//! The `dsr-cachetrace v1` per-run cache-decision trace and its
//! per-strategy rollup.
//!
//! One file is written per (scenario, seed) run when cache-decision
//! tracing is enabled. Each row is one route-cache decision — insert,
//! lookup, link removal, timer expiry, capacity eviction, or `mark_used`
//! refresh — already stamped by the *driver* with the mobility oracle's
//! verdict (was the route/link physically valid at that instant?) and,
//! for removals of genuinely broken links, with the staleness latency:
//! how long the cache kept serving the link after the oracle says it
//! physically broke.
//!
//! ```text
//! format = dsr-cachetrace v1
//! label = DSR-NC
//! seed = 1
//! fingerprint = 00805db0365eff10
//! columns = t_ns node op kind dst route valid stale_ns
//! dropped = 0
//! rows = 3
//! 1000000 5 insert overheard - 5-3-2 1 -
//! 2000000 5 lookup origination 2 5-3-2 0 -
//! 3000000 5 remove mac - 5>3 0 1500000
//! ```
//!
//! Column conventions (`-` marks a column the op does not use):
//!
//! * `op` — `insert`, `lookup`, `remove`, `expire`, `evict`, `refresh`,
//!   `suppress` (a non-optimal route vetoed), `failover` (a multipath
//!   cache promoted a surviving alternate after a link purge);
//! * `kind` — the insert provenance (`reply`/`overheard`/`gratuitous`/
//!   `salvage`), lookup purpose (`origination`/`salvage`/`reply`),
//!   removal cause (`rerr`/`wider`/`mac`/`neg-veto`/`preempt`), or the
//!   suppressed action (`insert`/`reply`);
//! * `dst` — the looked-up destination (lookup rows only);
//! * `route` — the route as `0-1-2`, or the removed link as `a>b`;
//! * `valid` — the oracle's verdict (`1` valid, `0` stale/broken, `-` on
//!   lookup misses). On `remove` rows `1` means a *premature purge*: the
//!   link was physically up when the cache discarded it;
//! * `stale_ns` — removal rows of genuinely broken links only: nanoseconds
//!   between the oracle's break time and the purge (`0` for premature
//!   purges; `-` elsewhere).
//!
//! Rows are appended in event-dispatch order, which the supervised
//! executor makes independent of `--jobs`, so files are byte-identical at
//! any worker count.

use crate::text::{escape, sanitize, unescape, KvBlock, ObsError};
use std::path::{Path, PathBuf};

/// First line of every cache-decision trace file.
pub const FORMAT_HEADER: &str = "dsr-cachetrace v1";

/// Space-separated column names, in row order.
pub const COLUMNS: &[&str] = &["t_ns", "node", "op", "kind", "dst", "route", "valid", "stale_ns"];

/// The `op` column's vocabulary.
pub const OPS: &[&str] =
    &["insert", "lookup", "remove", "expire", "evict", "refresh", "suppress", "failover"];

/// One recorded cache decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheRow {
    /// Decision time in simulated nanoseconds.
    pub t_ns: u64,
    /// Node whose cache decided.
    pub node: u64,
    /// Operation, one of [`OPS`].
    pub op: String,
    /// Provenance / purpose / cause, or `-`.
    pub kind: String,
    /// Looked-up destination, or `-`.
    pub dst: String,
    /// Route (`0-1-2`) or link (`a>b`), or `-`.
    pub route: String,
    /// Oracle verdict; `None` renders `-` (lookup misses).
    pub valid: Option<bool>,
    /// Staleness latency in nanoseconds; `None` renders `-`.
    pub stale_ns: Option<u64>,
}

impl CacheRow {
    fn render(&self) -> String {
        let valid = match self.valid {
            Some(true) => "1".to_string(),
            Some(false) => "0".to_string(),
            None => "-".to_string(),
        };
        let stale = match self.stale_ns {
            Some(ns) => ns.to_string(),
            None => "-".to_string(),
        };
        format!(
            "{} {} {} {} {} {} {valid} {stale}",
            self.t_ns, self.node, self.op, self.kind, self.dst, self.route
        )
    }

    fn parse(line_no: usize, line: &str) -> Result<CacheRow, ObsError> {
        let bad = || ObsError::BadRow { line_no, line: line.to_string() };
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != COLUMNS.len() {
            return Err(bad());
        }
        if !OPS.contains(&fields[2]) {
            return Err(bad());
        }
        let valid = match fields[6] {
            "1" => Some(true),
            "0" => Some(false),
            "-" => None,
            _ => return Err(bad()),
        };
        let stale_ns = match fields[7] {
            "-" => None,
            raw => Some(raw.parse().map_err(|_| bad())?),
        };
        Ok(CacheRow {
            t_ns: fields[0].parse().map_err(|_| bad())?,
            node: fields[1].parse().map_err(|_| bad())?,
            op: fields[2].to_string(),
            kind: fields[3].to_string(),
            dst: fields[4].to_string(),
            route: fields[5].to_string(),
            valid,
            stale_ns,
        })
    }
}

/// A complete per-run cache-decision trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheTrace {
    /// Scenario label (e.g. `DSR-NC`).
    pub label: String,
    /// The run's RNG seed.
    pub seed: u64,
    /// `config_fingerprint` of the scenario (seed excluded).
    pub fingerprint: u64,
    /// Decisions in event-dispatch order.
    pub rows: Vec<CacheRow>,
    /// Rows discarded after the recorder's deterministic cap filled. A
    /// non-zero value is surfaced (never silently hidden) so a truncated
    /// trace cannot masquerade as full coverage.
    pub dropped: u64,
}

impl CacheTrace {
    /// Renders the full file, header and rows.
    pub fn render(&self) -> String {
        let mut block = KvBlock::new();
        block.push("format", FORMAT_HEADER);
        block.push("label", escape(&self.label));
        block.push("seed", self.seed.to_string());
        block.push("fingerprint", format!("{:016x}", self.fingerprint));
        block.push("columns", COLUMNS.join(" "));
        block.push("dropped", self.dropped.to_string());
        block.push("rows", self.rows.len().to_string());
        let mut out = block.render();
        for row in &self.rows {
            out.push_str(&row.render());
            out.push('\n');
        }
        out
    }

    /// Parses a rendered trace, validating header and row shape.
    pub fn parse(text: &str) -> Result<CacheTrace, ObsError> {
        let mut rows = Vec::new();
        let block = KvBlock::parse_with_rows(text, |line_no, line| {
            rows.push(CacheRow::parse(line_no, line)?);
            Ok(())
        })?;
        let format = block.require("format")?;
        if format != FORMAT_HEADER {
            return Err(ObsError::BadHeader { expected: FORMAT_HEADER, found: format.to_string() });
        }
        let declared: usize = block.require_parsed("rows")?;
        if declared != rows.len() {
            return Err(ObsError::BadValue {
                key: "rows".to_string(),
                value: format!("declared {declared}, found {}", rows.len()),
            });
        }
        Ok(CacheTrace {
            label: unescape(block.require("label")?),
            seed: block.require_parsed("seed")?,
            fingerprint: block.require_hex("fingerprint")?,
            rows,
            dropped: block.require_parsed("dropped")?,
        })
    }

    /// Canonical file name: `<label>_<fingerprint>_seed<seed>.cachetrace`,
    /// the same stem as the run's forensic artifact and time series.
    pub fn file_name(&self) -> String {
        format!("{}_{:016x}_seed{}.cachetrace", sanitize(&self.label), self.fingerprint, self.seed)
    }

    /// Writes the trace into `dir` (created if needed) under
    /// [`CacheTrace::file_name`]; returns the full path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Loads and parses a trace from disk.
    pub fn load(path: &Path) -> Result<CacheTrace, ObsError> {
        CacheTrace::parse(&std::fs::read_to_string(path)?)
    }
}

/// Per-strategy aggregation over one or more cache traces: the numbers
/// behind the "why the strategies differ" table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheRollup {
    /// Strategy label the rollup covers.
    pub label: String,
    /// Traces folded in.
    pub traces: u64,
    /// Rows the recorders dropped past their cap, summed (non-zero means
    /// the rollup undercounts and must be reported as partial).
    pub dropped: u64,
    /// Inserts per provenance, `(provenance, count)` in first-seen order.
    pub inserts: Vec<(String, u64)>,
    /// Lookup hits whose route the oracle deemed fully up.
    pub hits_fresh: u64,
    /// Lookup hits handing out an already-broken route (stale-at-use).
    pub hits_stale: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Link purges per cause, `(cause, count)` in first-seen order.
    pub removals: Vec<(String, u64)>,
    /// Purges of links the oracle says were still up (premature purges —
    /// the cache threw away a working route).
    pub premature_purges: u64,
    /// Timer-expiry prunes.
    pub expires: u64,
    /// Capacity evictions.
    pub evicts: u64,
    /// `mark_used` refreshes.
    pub refreshes: u64,
    /// Non-optimal routes vetoed per action (`insert`/`reply`), in
    /// first-seen order.
    pub suppressions: Vec<(String, u64)>,
    /// Multipath failovers: alternates promoted after a link purge.
    pub failovers: u64,
    /// Staleness latencies (ns) of genuinely broken purged links, unsorted.
    pub stale_latencies_ns: Vec<u64>,
}

fn bump(slots: &mut Vec<(String, u64)>, key: &str) {
    match slots.iter_mut().find(|(k, _)| k == key) {
        Some((_, n)) => *n += 1,
        None => slots.push((key.to_string(), 1)),
    }
}

impl CacheRollup {
    /// An empty rollup for `label`.
    pub fn new(label: impl Into<String>) -> Self {
        CacheRollup { label: label.into(), ..CacheRollup::default() }
    }

    /// Folds one trace's rows in.
    pub fn add(&mut self, trace: &CacheTrace) {
        self.traces += 1;
        self.dropped += trace.dropped;
        for row in &trace.rows {
            match row.op.as_str() {
                "insert" => bump(&mut self.inserts, &row.kind),
                "lookup" => match row.valid {
                    Some(true) => self.hits_fresh += 1,
                    Some(false) => self.hits_stale += 1,
                    None => self.misses += 1,
                },
                "remove" => {
                    bump(&mut self.removals, &row.kind);
                    match row.valid {
                        Some(true) => self.premature_purges += 1,
                        Some(false) => {
                            if let Some(ns) = row.stale_ns {
                                self.stale_latencies_ns.push(ns);
                            }
                        }
                        None => {}
                    }
                }
                "expire" => self.expires += 1,
                "evict" => self.evicts += 1,
                "refresh" => self.refreshes += 1,
                "suppress" => bump(&mut self.suppressions, &row.kind),
                "failover" => self.failovers += 1,
                _ => {}
            }
        }
    }

    /// Total lookup hits, fresh and stale.
    pub fn hits(&self) -> u64 {
        self.hits_fresh + self.hits_stale
    }

    /// Fraction of hits that handed out a broken route, in `[0, 1]`
    /// (`0` when there were no hits).
    pub fn stale_hit_fraction(&self) -> f64 {
        if self.hits() == 0 {
            0.0
        } else {
            self.hits_stale as f64 / self.hits() as f64
        }
    }

    /// Nearest-rank quantile of the staleness latency in nanoseconds
    /// (`None` with no broken-link purges recorded).
    pub fn stale_latency_ns(&self, q: f64) -> Option<u64> {
        if self.stale_latencies_ns.is_empty() {
            return None;
        }
        let mut sorted = self.stale_latencies_ns.clone();
        sorted.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        Some(sorted[rank.min(sorted.len()) - 1])
    }

    /// Insert count for one provenance.
    pub fn inserts_of(&self, provenance: &str) -> u64 {
        self.inserts.iter().find(|(k, _)| k == provenance).map_or(0, |(_, n)| *n)
    }

    /// Removal count for one cause.
    pub fn removals_of(&self, cause: &str) -> u64 {
        self.removals.iter().find(|(k, _)| k == cause).map_or(0, |(_, n)| *n)
    }

    /// Suppression count for one vetoed action (`insert` or `reply`).
    pub fn suppressions_of(&self, action: &str) -> u64 {
        self.suppressions.iter().find(|(k, _)| k == action).map_or(0, |(_, n)| *n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(
        t_ns: u64,
        op: &str,
        kind: &str,
        valid: Option<bool>,
        stale_ns: Option<u64>,
    ) -> CacheRow {
        CacheRow {
            t_ns,
            node: 5,
            op: op.to_string(),
            kind: kind.to_string(),
            dst: if op == "lookup" { "2".to_string() } else { "-".to_string() },
            route: if op == "remove" { "5>3".to_string() } else { "5-3-2".to_string() },
            valid,
            stale_ns,
        }
    }

    fn sample_trace() -> CacheTrace {
        CacheTrace {
            label: "DSR-NC quick".to_string(),
            seed: 3,
            fingerprint: 0xDEAD_BEEF_0123_4567,
            rows: vec![
                row(1_000_000, "insert", "overheard", Some(true), None),
                row(1_500_000, "insert", "reply", Some(true), None),
                row(2_000_000, "lookup", "origination", Some(false), None),
                row(2_100_000, "lookup", "origination", Some(true), None),
                row(2_200_000, "lookup", "salvage", None, None),
                row(3_000_000, "remove", "mac", Some(false), Some(1_500_000)),
                row(3_100_000, "remove", "wider", Some(true), Some(0)),
                row(4_000_000, "expire", "-", Some(false), None),
                row(4_100_000, "evict", "-", Some(true), None),
                row(4_200_000, "refresh", "-", Some(true), None),
                row(4_300_000, "suppress", "insert", Some(true), None),
                row(4_400_000, "suppress", "reply", Some(true), None),
                row(4_500_000, "failover", "-", Some(true), None),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn render_parse_round_trips_byte_identically() {
        let trace = sample_trace();
        let text = trace.render();
        let parsed = CacheTrace::parse(&text).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn file_name_shares_the_forensic_stem() {
        assert_eq!(sample_trace().file_name(), "DSR-NC_quick_deadbeef01234567_seed3.cachetrace");
    }

    #[test]
    fn write_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("obs_ct_{}", std::process::id()));
        let trace = sample_trace();
        let path = trace.write_to(&dir).unwrap();
        let loaded = CacheTrace::load(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(CacheTrace::parse("format = wrong v9\nrows = 0\ndropped = 0\n").is_err());
        let trace = sample_trace();
        let mut text = trace.render();
        text.push_str("1 2 3\n"); // short row
        assert!(CacheTrace::parse(&text).is_err());
        let text = trace.render().replace("rows = 13", "rows = 14");
        assert!(CacheTrace::parse(&text).is_err());
        // Unknown op and bad valid flag are rejected, not silently kept.
        let text = trace.render().replace(" insert ", " implode ");
        assert!(CacheTrace::parse(&text).is_err());
        let text = trace.render().replacen(" 1 -\n", " 2 -\n", 1);
        assert!(CacheTrace::parse(&text).is_err());
    }

    #[test]
    fn rollup_classifies_every_op() {
        let mut rollup = CacheRollup::new("DSR-NC quick");
        rollup.add(&sample_trace());
        assert_eq!(rollup.traces, 1);
        assert_eq!(rollup.inserts_of("overheard"), 1);
        assert_eq!(rollup.inserts_of("reply"), 1);
        assert_eq!(rollup.inserts_of("gratuitous"), 0);
        assert_eq!(rollup.hits_fresh, 1);
        assert_eq!(rollup.hits_stale, 1);
        assert_eq!(rollup.misses, 1);
        assert!((rollup.stale_hit_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(rollup.removals_of("mac"), 1);
        assert_eq!(rollup.removals_of("wider"), 1);
        assert_eq!(rollup.premature_purges, 1);
        assert_eq!(rollup.expires, 1);
        assert_eq!(rollup.evicts, 1);
        assert_eq!(rollup.refreshes, 1);
        assert_eq!(rollup.suppressions_of("insert"), 1);
        assert_eq!(rollup.suppressions_of("reply"), 1);
        assert_eq!(rollup.suppressions_of("lookup"), 0);
        assert_eq!(rollup.failovers, 1);
        assert_eq!(rollup.stale_latency_ns(0.5), Some(1_500_000));
        assert_eq!(rollup.stale_latency_ns(0.99), Some(1_500_000));
    }

    #[test]
    fn rollup_latency_quantiles_use_nearest_rank() {
        let mut rollup = CacheRollup::new("x");
        rollup.stale_latencies_ns = vec![40, 10, 30, 20];
        assert_eq!(rollup.stale_latency_ns(0.5), Some(20));
        assert_eq!(rollup.stale_latency_ns(0.99), Some(40));
        assert_eq!(rollup.stale_latency_ns(0.0), Some(10));
        assert_eq!(CacheRollup::new("y").stale_latency_ns(0.5), None);
    }

    #[test]
    fn dropped_rows_are_carried_not_hidden() {
        let mut trace = sample_trace();
        trace.dropped = 7;
        let text = trace.render();
        assert!(text.contains("dropped = 7"));
        let mut rollup = CacheRollup::new(&trace.label);
        rollup.add(&trace);
        rollup.add(&trace);
        assert_eq!(rollup.dropped, 14);
    }

    #[test]
    fn empty_hit_fraction_is_zero() {
        assert_eq!(CacheRollup::new("x").stale_hit_fraction(), 0.0);
    }
}
