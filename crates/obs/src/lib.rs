//! Zero-cost-when-off instrumentation for the DSR simulator.
//!
//! Three pillars, all gated by [`ObsConfig`] and provably inert when off
//! (obs-on and obs-off runs produce byte-identical `Report`s — the same
//! discipline as the conservation audit):
//!
//! 1. **Time-series sampler** ([`timeseries`]): at a configurable sim-time
//!    interval, snapshot per-layer gauges (route-cache size and oracle-valid
//!    fraction, negative-cache occupancy, send-buffer and MAC queue depths,
//!    in-flight discoveries) into one `dsr-timeseries v1` file per run.
//! 2. **Event-loop profiler** ([`profile`]): events and wall time per event
//!    kind plus drop-reason/trace-kind tallies, merged per campaign into a
//!    `dsr-profile v1` summary and a `BENCH_*.json` baseline.
//! 3. **Query engine** ([`query`]): filtering and uid-following over trace
//!    and time-series files, surfaced by the `trace_query` binary.
//!
//! Sampling happens inline in the runner's event loop at interval
//! boundaries — no scheduled events, no RNG draws — so enabling it cannot
//! perturb the simulation. Wall-clock measurement never feeds back into
//! simulated time.

pub mod profile;
pub mod query;
pub mod text;
pub mod timeseries;

pub use profile::{Profile, Tally, TallyMap};
pub use query::{
    follow_uid, parse_trace_line, read_file, Filter, FollowReport, ObsFile, TraceLine,
};
pub use text::ObsError;
pub use timeseries::{SampleRow, Sampler, TimeSeries};

use sim_core::{SimDuration, SimTime};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Whether and how densely to sample per-layer gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// No instrumentation; the hot path is untouched.
    #[default]
    Off,
    /// Sample gauges every `interval` of simulated time.
    Sample {
        /// Simulated time between samples.
        interval: SimDuration,
    },
}

impl ObsMode {
    /// Default sampling cadence: every 5 simulated seconds.
    pub fn default_interval() -> SimDuration {
        SimDuration::from_secs(5.0)
    }

    /// Parses a CLI value: `off`, `sample`, or `sample:<seconds>`.
    pub fn parse(raw: &str) -> Result<ObsMode, String> {
        match raw {
            "off" => Ok(ObsMode::Off),
            "sample" => Ok(ObsMode::Sample { interval: Self::default_interval() }),
            other => {
                let secs = other
                    .strip_prefix("sample:")
                    .ok_or_else(|| format!("bad obs mode `{other}`"))?
                    .parse::<f64>()
                    .map_err(|_| format!("bad obs interval in `{other}`"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("obs interval must be positive, got `{other}`"));
                }
                Ok(ObsMode::Sample { interval: SimDuration::from_secs(secs) })
            }
        }
    }

    /// True when any instrumentation is enabled.
    pub fn is_on(&self) -> bool {
        !matches!(self, ObsMode::Off)
    }

    /// The sampling interval, when sampling.
    pub fn interval(&self) -> Option<SimDuration> {
        match self {
            ObsMode::Off => None,
            ObsMode::Sample { interval } => Some(*interval),
        }
    }
}

/// Observability settings carried on `CampaignConfig`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsConfig {
    /// Sampling mode; `Off` disables the sampler and profiler entirely.
    pub mode: ObsMode,
    /// Directory for per-run `dsr-timeseries v1` files; `None` keeps the
    /// series in memory only (still merged into the campaign profile).
    pub timeseries_dir: Option<PathBuf>,
    /// Emit live stderr heartbeat lines while the campaign runs.
    pub heartbeat: bool,
}

impl ObsConfig {
    /// Shorthand for a fully disabled config.
    pub fn off() -> Self {
        ObsConfig::default()
    }

    /// True when the runner must instrument the event loop.
    pub fn is_on(&self) -> bool {
        self.mode.is_on()
    }
}

/// A routing agent's self-reported gauges, polled by the sampler.
///
/// Returned by `RoutingAgent::observe`; agents that do not participate
/// (AODV, TCP wrappers) return `None` and simply contribute zeros.
#[derive(Debug, Clone, Default)]
pub struct AgentObservation {
    /// Snapshot of the node's cached routes (paths, or per-link stubs for a
    /// link cache) for oracle validity checking.
    pub routes: Vec<packet::Route>,
    /// Live negative-cache entries.
    pub negative_entries: usize,
    /// Packets parked awaiting a route.
    pub send_buffer: usize,
    /// Route discoveries currently in flight.
    pub discoveries: usize,
}

/// Everything one instrumented run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunObservation {
    /// The run's sampled gauge series.
    pub timeseries: TimeSeries,
    /// The run's event-loop profile (`runs == 1`).
    pub profile: Profile,
}

/// A progress pulse from inside a run's event loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatTick {
    /// Current simulated time.
    pub now: SimTime,
    /// The run's simulated end time.
    pub end: SimTime,
    /// Events dispatched so far in this run.
    pub events: u64,
}

/// Campaign-wide progress aggregation behind the stderr heartbeat.
///
/// Worker threads report finished runs via [`run_finished`]; the in-loop
/// heartbeat calls [`heartbeat_line`], which returns a formatted status line
/// at most once per throttle period (so concurrent runs don't flood
/// stderr).
///
/// [`run_finished`]: CampaignProgress::run_finished
/// [`heartbeat_line`]: CampaignProgress::heartbeat_line
#[derive(Debug)]
pub struct CampaignProgress {
    total_runs: u64,
    done: AtomicU64,
    failed: AtomicU64,
    events_done: AtomicU64,
    started: Instant,
    last_print_ms: AtomicU64,
    throttle_ms: u64,
}

impl CampaignProgress {
    /// Creates a tracker for `total_runs` seeds with a 1 s print throttle.
    pub fn new(total_runs: u64) -> Arc<Self> {
        Self::with_throttle(total_runs, 1000)
    }

    /// Creates a tracker with a custom throttle (milliseconds); `0` prints
    /// on every tick (used by tests).
    pub fn with_throttle(total_runs: u64, throttle_ms: u64) -> Arc<Self> {
        Arc::new(CampaignProgress {
            total_runs,
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            events_done: AtomicU64::new(0),
            started: Instant::now(),
            last_print_ms: AtomicU64::new(0),
            throttle_ms,
        })
    }

    /// Records a finished run and the events it dispatched.
    pub fn run_finished(&self, ok: bool, events: u64) {
        self.done.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.events_done.fetch_add(events, Ordering::Relaxed);
    }

    /// Formats a status line for a tick, or `None` while throttled.
    ///
    /// The line reads like
    /// `[obs] 3/10 seeds done (1 failed), 1.2M events/s, ETA 42s`.
    pub fn heartbeat_line(&self, tick: HeartbeatTick) -> Option<String> {
        let now_ms = self.started.elapsed().as_millis() as u64;
        // Claim the print slot atomically so concurrent workers stay quiet.
        let claimed = self
            .last_print_ms
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |last| {
                // First tick prints immediately; afterwards honor the
                // throttle window.
                if last == 0 || now_ms.saturating_sub(last) >= self.throttle_ms {
                    Some(now_ms.max(1))
                } else {
                    None
                }
            })
            .is_ok();
        if !claimed {
            return None;
        }
        Some(self.format_line(tick, now_ms))
    }

    fn format_line(&self, tick: HeartbeatTick, now_ms: u64) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let events = self.events_done.load(Ordering::Relaxed) + tick.events;
        let elapsed_s = (now_ms as f64 / 1000.0).max(1e-3);
        let rate = events as f64 / elapsed_s;
        let run_progress = if tick.end > SimTime::ZERO {
            (tick.now.as_secs() / tick.end.as_secs()).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let frac = ((done as f64 + run_progress) / self.total_runs.max(1) as f64).clamp(0.0, 1.0);
        let eta = if frac > 1e-6 && frac < 1.0 {
            let remaining = elapsed_s * (1.0 - frac) / frac;
            format!("ETA {}s", remaining.round() as u64)
        } else {
            "ETA --".to_string()
        };
        format!(
            "[obs] {done}/{total} seeds done ({failed} failed), {rate} events/s, {eta}",
            total = self.total_runs,
            rate = human_rate(rate),
        )
    }
}

fn human_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_mode_parses_cli_values() {
        assert_eq!(ObsMode::parse("off").unwrap(), ObsMode::Off);
        assert_eq!(
            ObsMode::parse("sample").unwrap(),
            ObsMode::Sample { interval: SimDuration::from_secs(5.0) }
        );
        assert_eq!(
            ObsMode::parse("sample:0.5").unwrap(),
            ObsMode::Sample { interval: SimDuration::from_secs(0.5) }
        );
        assert!(ObsMode::parse("on").is_err());
        assert!(ObsMode::parse("sample:").is_err());
        assert!(ObsMode::parse("sample:-1").is_err());
        assert!(ObsMode::parse("sample:0").is_err());
        assert!(ObsMode::parse("sample:nan").is_err());
    }

    #[test]
    fn obs_config_defaults_off() {
        let config = ObsConfig::default();
        assert!(!config.is_on());
        assert_eq!(config, ObsConfig::off());
        assert!(ObsConfig { mode: ObsMode::parse("sample").unwrap(), ..ObsConfig::off() }.is_on());
    }

    #[test]
    fn heartbeat_reports_progress_and_throttles() {
        let progress = CampaignProgress::with_throttle(4, 0);
        progress.run_finished(true, 1000);
        progress.run_finished(false, 500);
        let tick = HeartbeatTick {
            now: SimTime::from_secs(60.0),
            end: SimTime::from_secs(120.0),
            events: 250,
        };
        let line = progress.heartbeat_line(tick).expect("zero throttle always prints");
        assert!(line.contains("2/4 seeds done (1 failed)"), "line: {line}");
        assert!(line.contains("events/s"), "line: {line}");
        assert!(line.contains("ETA"), "line: {line}");

        // A long throttle suppresses the second print.
        let throttled = CampaignProgress::with_throttle(4, 3_600_000);
        assert!(throttled.heartbeat_line(tick).is_some(), "first tick prints");
        assert!(throttled.heartbeat_line(tick).is_none(), "second tick throttled");
    }

    #[test]
    fn human_rate_scales_units() {
        assert_eq!(human_rate(950.0), "950");
        assert_eq!(human_rate(1500.0), "1.5k");
        assert_eq!(human_rate(2_500_000.0), "2.5M");
    }
}
