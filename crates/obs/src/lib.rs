//! Zero-cost-when-off instrumentation for the DSR simulator.
//!
//! Three pillars, all gated by [`ObsConfig`] and provably inert when off
//! (obs-on and obs-off runs produce byte-identical `Report`s — the same
//! discipline as the conservation audit):
//!
//! 1. **Time-series sampler** ([`timeseries`]): at a configurable sim-time
//!    interval, snapshot per-layer gauges (route-cache size and oracle-valid
//!    fraction, negative-cache occupancy, send-buffer and MAC queue depths,
//!    in-flight discoveries) into one `dsr-timeseries v1` file per run.
//! 2. **Event-loop profiler** ([`profile`]): events and wall time per event
//!    kind plus drop-reason/trace-kind tallies, merged per campaign into a
//!    `dsr-profile v1` summary and a `BENCH_*.json` baseline.
//! 3. **Query engine** ([`query`]): filtering and uid-following over trace
//!    and time-series files, surfaced by the `trace_query` binary.
//!
//! Sampling happens inline in the runner's event loop at interval
//! boundaries — no scheduled events, no RNG draws — so enabling it cannot
//! perturb the simulation. Wall-clock measurement never feeds back into
//! simulated time.

pub mod cachetrace;
pub mod profile;
pub mod query;
pub mod text;
pub mod timeseries;

pub use cachetrace::{CacheRollup, CacheRow, CacheTrace, COLUMNS, OPS};
pub use profile::{Profile, Tally, TallyMap};
pub use query::{
    follow_uid, parse_trace_line, read_file, Filter, FollowReport, ObsFile, TraceLine,
};
pub use text::ObsError;
pub use timeseries::{SampleRow, Sampler, TimeSeries};

use sim_core::{SimDuration, SimTime};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Whether and how densely to sample per-layer gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// No instrumentation; the hot path is untouched.
    #[default]
    Off,
    /// Sample gauges every `interval` of simulated time.
    Sample {
        /// Simulated time between samples.
        interval: SimDuration,
    },
}

impl ObsMode {
    /// Default sampling cadence: every 5 simulated seconds.
    pub fn default_interval() -> SimDuration {
        SimDuration::from_secs(5.0)
    }

    /// Parses a CLI value: `off`, `sample`, or `sample:<seconds>`.
    pub fn parse(raw: &str) -> Result<ObsMode, String> {
        match raw {
            "off" => Ok(ObsMode::Off),
            "sample" => Ok(ObsMode::Sample { interval: Self::default_interval() }),
            other => {
                let secs = other
                    .strip_prefix("sample:")
                    .ok_or_else(|| format!("bad obs mode `{other}`"))?
                    .parse::<f64>()
                    .map_err(|_| format!("bad obs interval in `{other}`"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("obs interval must be positive, got `{other}`"));
                }
                Ok(ObsMode::Sample { interval: SimDuration::from_secs(secs) })
            }
        }
    }

    /// True when any instrumentation is enabled.
    pub fn is_on(&self) -> bool {
        !matches!(self, ObsMode::Off)
    }

    /// The sampling interval, when sampling.
    pub fn interval(&self) -> Option<SimDuration> {
        match self {
            ObsMode::Off => None,
            ObsMode::Sample { interval } => Some(*interval),
        }
    }
}

/// Observability settings carried on `CampaignConfig`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsConfig {
    /// Sampling mode; `Off` disables the sampler and profiler entirely.
    pub mode: ObsMode,
    /// Directory for per-run `dsr-timeseries v1` files; `None` keeps the
    /// series in memory only (still merged into the campaign profile).
    pub timeseries_dir: Option<PathBuf>,
    /// Emit live stderr heartbeat lines while the campaign runs.
    pub heartbeat: bool,
    /// Directory for per-run `dsr-cachetrace v1` cache-decision traces;
    /// `None` disables decision tracing. Independent of `mode` — and
    /// deliberately *not* consulted by [`ObsConfig::is_on`], which gates
    /// the sampler/profiler pillar only.
    pub cachetrace_dir: Option<PathBuf>,
}

impl ObsConfig {
    /// Shorthand for a fully disabled config.
    pub fn off() -> Self {
        ObsConfig::default()
    }

    /// True when the runner must instrument the event loop.
    pub fn is_on(&self) -> bool {
        self.mode.is_on()
    }
}

/// A routing agent's self-reported gauges, polled by the sampler.
///
/// Returned by `RoutingAgent::observe`; agents that do not participate
/// (AODV, TCP wrappers) return `None` and simply contribute zeros.
#[derive(Debug, Clone, Default)]
pub struct AgentObservation {
    /// Snapshot of the node's cached routes (paths, or per-link stubs for a
    /// link cache) for oracle validity checking.
    pub routes: Vec<packet::Route>,
    /// Live negative-cache entries.
    pub negative_entries: usize,
    /// Packets parked awaiting a route.
    pub send_buffer: usize,
    /// Route discoveries currently in flight.
    pub discoveries: usize,
}

/// Everything one instrumented run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunObservation {
    /// The run's sampled gauge series.
    pub timeseries: TimeSeries,
    /// The run's event-loop profile (`runs == 1`).
    pub profile: Profile,
}

/// A progress pulse from inside a run's event loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatTick {
    /// Current simulated time.
    pub now: SimTime,
    /// The run's simulated end time.
    pub end: SimTime,
    /// Events dispatched so far in this run.
    pub events: u64,
}

/// One campaign worker's live state, as aggregated into the heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerState {
    /// Waiting for work (or done).
    #[default]
    Idle,
    /// Executing this seed.
    Running {
        /// The in-flight run's seed.
        seed: u64,
    },
    /// Holding a transient failure of this seed through its backoff delay.
    Backoff {
        /// The seed waiting to be retried.
        seed: u64,
    },
    /// The worker thread died and will not come back.
    Dead,
}

/// One worker's slice of the pool-wide aggregation.
#[derive(Debug, Default)]
struct WorkerCell {
    state: Mutex<WorkerState>,
    /// Events dispatched so far by the worker's *current* run (folded into
    /// the pool-wide events/s alongside the completed-run total).
    inflight_events: AtomicU64,
    /// The current run's progress through simulated time, in thousandths.
    progress_milli: AtomicU64,
}

/// Campaign-wide progress aggregation behind the stderr heartbeat.
///
/// Worker threads report finished runs via [`run_finished`] and publish
/// their live state via [`set_worker`]; each run's in-loop heartbeat calls
/// [`heartbeat_line_for`], which folds every worker's in-flight events and
/// run progress into one pool-wide status line, printed at most once per
/// throttle period (so concurrent runs don't flood stderr).
///
/// [`run_finished`]: CampaignProgress::run_finished
/// [`set_worker`]: CampaignProgress::set_worker
/// [`heartbeat_line_for`]: CampaignProgress::heartbeat_line_for
#[derive(Debug)]
pub struct CampaignProgress {
    total_runs: u64,
    done: AtomicU64,
    failed: AtomicU64,
    events_done: AtomicU64,
    started: Instant,
    last_print_ms: AtomicU64,
    throttle_ms: u64,
    workers: Vec<WorkerCell>,
}

impl CampaignProgress {
    /// Creates a tracker for `total_runs` seeds with a 1 s print throttle.
    pub fn new(total_runs: u64) -> Arc<Self> {
        Self::with_throttle(total_runs, 1000)
    }

    /// Creates a tracker with a custom throttle (milliseconds); `0` prints
    /// on every tick (used by tests).
    pub fn with_throttle(total_runs: u64, throttle_ms: u64) -> Arc<Self> {
        Self::with_workers_and_throttle(total_runs, 1, throttle_ms)
    }

    /// Creates a tracker aggregating `workers` concurrent workers with a
    /// 1 s print throttle.
    pub fn with_workers(total_runs: u64, workers: usize) -> Arc<Self> {
        Self::with_workers_and_throttle(total_runs, workers, 1000)
    }

    /// Creates a tracker aggregating `workers` concurrent workers with a
    /// custom throttle (milliseconds); `0` prints on every tick.
    pub fn with_workers_and_throttle(
        total_runs: u64,
        workers: usize,
        throttle_ms: u64,
    ) -> Arc<Self> {
        Arc::new(CampaignProgress {
            total_runs,
            done: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            events_done: AtomicU64::new(0),
            started: Instant::now(),
            last_print_ms: AtomicU64::new(0),
            throttle_ms,
            workers: (0..workers.max(1)).map(|_| WorkerCell::default()).collect(),
        })
    }

    /// Number of worker cells this tracker aggregates.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Publishes worker `worker`'s state. Leaving a run (`Idle`, `Dead`)
    /// clears the worker's in-flight contribution.
    pub fn set_worker(&self, worker: usize, state: WorkerState) {
        let Some(cell) = self.workers.get(worker) else { return };
        *cell.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = state;
        if !matches!(state, WorkerState::Running { .. }) {
            cell.inflight_events.store(0, Ordering::Relaxed);
            cell.progress_milli.store(0, Ordering::Relaxed);
        }
    }

    /// Worker `worker`'s last published state.
    pub fn worker_state(&self, worker: usize) -> WorkerState {
        self.workers.get(worker).map_or(WorkerState::Idle, |cell| {
            *cell.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        })
    }

    /// Records a finished run and the events it dispatched.
    pub fn run_finished(&self, ok: bool, events: u64) {
        self.done.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.events_done.fetch_add(events, Ordering::Relaxed);
    }

    /// Formats a status line for a single-worker campaign's tick, or
    /// `None` while throttled. Equivalent to [`heartbeat_line_for`] on
    /// worker 0.
    ///
    /// [`heartbeat_line_for`]: CampaignProgress::heartbeat_line_for
    pub fn heartbeat_line(&self, tick: HeartbeatTick) -> Option<String> {
        self.heartbeat_line_for(0, tick)
    }

    /// Publishes worker `worker`'s tick and formats a pool-wide status
    /// line, or `None` while throttled.
    ///
    /// The line reads like
    /// `[obs] 3/10 seeds done (1 failed), 1.2M events/s, ETA 42s`, with a
    /// `W running / X backoff / Y idle / Z dead` segment when the pool has
    /// more than one worker.
    pub fn heartbeat_line_for(&self, worker: usize, tick: HeartbeatTick) -> Option<String> {
        if let Some(cell) = self.workers.get(worker) {
            cell.inflight_events.store(tick.events, Ordering::Relaxed);
            let milli = if tick.end > SimTime::ZERO {
                ((tick.now.as_secs() / tick.end.as_secs()).clamp(0.0, 1.0) * 1000.0) as u64
            } else {
                0
            };
            cell.progress_milli.store(milli, Ordering::Relaxed);
        }
        let now_ms = self.started.elapsed().as_millis() as u64;
        // Claim the print slot atomically so concurrent workers stay quiet.
        let claimed = self
            .last_print_ms
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |last| {
                // First tick prints immediately; afterwards honor the
                // throttle window.
                if last == 0 || now_ms.saturating_sub(last) >= self.throttle_ms {
                    Some(now_ms.max(1))
                } else {
                    None
                }
            })
            .is_ok();
        if !claimed {
            return None;
        }
        Some(self.format_line(now_ms))
    }

    fn format_line(&self, now_ms: u64) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let mut events = self.events_done.load(Ordering::Relaxed);
        let mut inflight_progress = 0.0;
        let mut running = 0usize;
        let mut backoff = 0usize;
        let mut idle = 0usize;
        let mut dead = 0usize;
        for cell in &self.workers {
            events += cell.inflight_events.load(Ordering::Relaxed);
            inflight_progress += cell.progress_milli.load(Ordering::Relaxed) as f64 / 1000.0;
            match *cell.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner) {
                WorkerState::Idle => idle += 1,
                WorkerState::Running { .. } => running += 1,
                WorkerState::Backoff { .. } => backoff += 1,
                WorkerState::Dead => dead += 1,
            }
        }
        let elapsed_s = (now_ms as f64 / 1000.0).max(1e-3);
        let rate = events as f64 / elapsed_s;
        let frac =
            ((done as f64 + inflight_progress) / self.total_runs.max(1) as f64).clamp(0.0, 1.0);
        let eta = if frac > 1e-6 && frac < 1.0 {
            let remaining = elapsed_s * (1.0 - frac) / frac;
            format!("ETA {}s", remaining.round() as u64)
        } else {
            "ETA --".to_string()
        };
        let workers = if self.workers.len() > 1 {
            format!(" {running} running / {backoff} backoff / {idle} idle / {dead} dead,")
        } else {
            String::new()
        };
        format!(
            "[obs] {done}/{total} seeds done ({failed} failed),{workers} {rate} events/s, {eta}",
            total = self.total_runs,
            rate = human_rate(rate),
        )
    }
}

fn human_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_mode_parses_cli_values() {
        assert_eq!(ObsMode::parse("off").unwrap(), ObsMode::Off);
        assert_eq!(
            ObsMode::parse("sample").unwrap(),
            ObsMode::Sample { interval: SimDuration::from_secs(5.0) }
        );
        assert_eq!(
            ObsMode::parse("sample:0.5").unwrap(),
            ObsMode::Sample { interval: SimDuration::from_secs(0.5) }
        );
        assert!(ObsMode::parse("on").is_err());
        assert!(ObsMode::parse("sample:").is_err());
        assert!(ObsMode::parse("sample:-1").is_err());
        assert!(ObsMode::parse("sample:0").is_err());
        assert!(ObsMode::parse("sample:nan").is_err());
    }

    #[test]
    fn obs_config_defaults_off() {
        let config = ObsConfig::default();
        assert!(!config.is_on());
        assert_eq!(config, ObsConfig::off());
        assert!(ObsConfig { mode: ObsMode::parse("sample").unwrap(), ..ObsConfig::off() }.is_on());
    }

    #[test]
    fn heartbeat_reports_progress_and_throttles() {
        let progress = CampaignProgress::with_throttle(4, 0);
        progress.run_finished(true, 1000);
        progress.run_finished(false, 500);
        let tick = HeartbeatTick {
            now: SimTime::from_secs(60.0),
            end: SimTime::from_secs(120.0),
            events: 250,
        };
        let line = progress.heartbeat_line(tick).expect("zero throttle always prints");
        assert!(line.contains("2/4 seeds done (1 failed)"), "line: {line}");
        assert!(line.contains("events/s"), "line: {line}");
        assert!(line.contains("ETA"), "line: {line}");

        // A long throttle suppresses the second print.
        let throttled = CampaignProgress::with_throttle(4, 3_600_000);
        assert!(throttled.heartbeat_line(tick).is_some(), "first tick prints");
        assert!(throttled.heartbeat_line(tick).is_none(), "second tick throttled");
    }

    #[test]
    fn pool_heartbeat_aggregates_worker_states_and_inflight_events() {
        let progress = CampaignProgress::with_workers_and_throttle(8, 4, 0);
        assert_eq!(progress.workers(), 4);
        progress.run_finished(true, 10_000);
        progress.set_worker(0, WorkerState::Running { seed: 3 });
        progress.set_worker(1, WorkerState::Backoff { seed: 5 });
        progress.set_worker(2, WorkerState::Dead);
        assert_eq!(progress.worker_state(0), WorkerState::Running { seed: 3 });
        assert_eq!(progress.worker_state(3), WorkerState::Idle);
        // Out-of-range workers are ignored, not a panic.
        progress.set_worker(99, WorkerState::Dead);
        assert_eq!(progress.worker_state(99), WorkerState::Idle);

        let tick = HeartbeatTick {
            now: SimTime::from_secs(30.0),
            end: SimTime::from_secs(120.0),
            events: 2_000,
        };
        let line = progress.heartbeat_line_for(0, tick).expect("zero throttle always prints");
        assert!(line.contains("1/8 seeds done (0 failed)"), "line: {line}");
        assert!(line.contains("1 running / 1 backoff / 1 idle / 1 dead"), "line: {line}");
        assert!(line.contains("events/s"), "line: {line}");

        // Leaving the run clears the worker's in-flight contribution.
        progress.set_worker(0, WorkerState::Idle);
        let cleared = progress.heartbeat_line_for(
            1,
            HeartbeatTick { now: SimTime::ZERO, end: SimTime::from_secs(120.0), events: 0 },
        );
        assert!(cleared.expect("prints").contains("2 idle"), "worker 0 went idle");
    }

    #[test]
    fn single_worker_heartbeat_keeps_the_compact_format() {
        let progress = CampaignProgress::with_throttle(4, 0);
        let tick = HeartbeatTick { now: SimTime::ZERO, end: SimTime::from_secs(1.0), events: 0 };
        let line = progress.heartbeat_line(tick).expect("prints");
        assert!(!line.contains("running /"), "no worker segment for a pool of one: {line}");
    }

    #[test]
    fn human_rate_scales_units() {
        assert_eq!(human_rate(950.0), "950");
        assert_eq!(human_rate(1500.0), "1.5k");
        assert_eq!(human_rate(2_500_000.0), "2.5M");
    }
}
