//! DSR network-layer packets.
//!
//! Four packet kinds exist in DSR, mirroring the IETF draft and the ns-2
//! implementation the paper builds on:
//!
//! - [`DataPacket`] — application data carrying a complete source route;
//! - [`RouteRequest`] — the flooded discovery query, accumulating the path
//!   traversed so far;
//! - [`RouteReply`] — the discovered route, itself source-routed back to
//!   the requester;
//! - [`RouteErrorPkt`] — notification of a broken link, either unicast to
//!   the affected source (base DSR) or MAC-broadcast with conditional
//!   re-broadcast (the paper's *wider error notification*).
//!
//! Every kind reports a [`wire_size`](Packet::wire_size) in bytes, derived
//! from the draft's option formats (4-byte addresses), so MAC transmission
//! times and the *normalized overhead* metric are byte-accurate.

use std::fmt;

use sim_core::{NodeId, SimTime};

use crate::route::{Link, Route};

/// Size in bytes of an IPv4 header (every DSR packet rides in one).
pub const IP_HEADER_BYTES: usize = 20;
/// Size in bytes of one address in a DSR option.
pub const ADDR_BYTES: usize = 4;
/// Fixed part of the DSR source-route option.
pub const SR_OPTION_FIXED_BYTES: usize = 4;
/// Fixed part of the DSR route-request option (option header + id + target).
pub const RREQ_OPTION_FIXED_BYTES: usize = 8;
/// Fixed part of the DSR route-reply option.
pub const RREP_OPTION_FIXED_BYTES: usize = 4;
/// Fixed part of the DSR route-error option (type, salvage, error source /
/// destination, unreachable address).
pub const RERR_OPTION_FIXED_BYTES: usize = 12;

/// Bytes of a source-route option carrying `route_len` addresses.
fn sr_option_bytes(route_len: usize) -> usize {
    SR_OPTION_FIXED_BYTES + ADDR_BYTES * route_len
}

/// Globally unique packet identifier, for tracing and metrics. Assigned by
/// the simulation driver at origination; copies made while forwarding keep
/// the uid.
pub type PacketUid = u64;

/// An application data packet carrying its full source route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// Unique id, stable across hops.
    pub uid: PacketUid,
    /// Originating node (also `route.source()` unless salvaged).
    pub src: NodeId,
    /// Final destination (`route.destination()`).
    pub dst: NodeId,
    /// Per-flow sequence number assigned by the traffic source.
    pub seq: u64,
    /// Application payload size in bytes (paper: 512).
    pub payload_bytes: usize,
    /// Origination instant, for the end-to-end delay metric.
    pub sent_at: SimTime,
    /// The complete source route, including `src` and `dst`.
    pub route: Route,
    /// Index into `route` of the node currently holding the packet.
    pub hop: usize,
    /// How many times intermediate nodes salvaged this packet with a route
    /// from their own cache.
    pub salvage_count: u8,
}

impl DataPacket {
    /// The next hop this packet must be transmitted to.
    ///
    /// # Panics
    ///
    /// Panics if the packet is already at its destination.
    pub fn next_hop(&self) -> NodeId {
        assert!(self.hop + 1 < self.route.len(), "packet already delivered");
        self.route.nodes()[self.hop + 1]
    }

    /// The node currently holding the packet according to its header.
    pub fn current_hop(&self) -> NodeId {
        self.route.nodes()[self.hop]
    }

    /// Whether the current holder is the final destination.
    pub fn at_destination(&self) -> bool {
        self.hop + 1 == self.route.len()
    }

    /// Wire size: IP header + source-route option + payload.
    pub fn wire_size(&self) -> usize {
        IP_HEADER_BYTES + sr_option_bytes(self.route.len()) + self.payload_bytes
    }
}

/// A route discovery query, flooded (or, with TTL 1, asked of neighbors
/// only — the *non-propagating route request* optimization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteRequest {
    /// Unique id of this transmission.
    pub uid: PacketUid,
    /// The node performing discovery.
    pub origin: NodeId,
    /// The node being sought.
    pub target: NodeId,
    /// Discovery id, unique per origin; used for duplicate suppression.
    pub request_id: u64,
    /// Path accumulated so far, starting with `origin`.
    pub path: Vec<NodeId>,
    /// Remaining hops the request may propagate. 1 = non-propagating.
    pub ttl: u8,
    /// A recent route error piggybacked by the origin (*gratuitous route
    /// repair*): receivers purge the broken link before answering from
    /// cache, preventing the very reply that caused the error.
    pub piggyback_error: Option<Link>,
}

impl RouteRequest {
    /// Wire size: IP header + request option with accumulated addresses
    /// (+ the piggybacked error option, if present).
    pub fn wire_size(&self) -> usize {
        let err = if self.piggyback_error.is_some() { RERR_OPTION_FIXED_BYTES } else { 0 };
        IP_HEADER_BYTES + RREQ_OPTION_FIXED_BYTES + ADDR_BYTES * self.path.len() + err
    }
}

/// A route reply, delivering a discovered route back to the requester.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteReply {
    /// Unique id.
    pub uid: PacketUid,
    /// The route being reported: `origin .. target` of the discovery.
    pub discovered: Route,
    /// Whether an intermediate node produced this reply from its cache
    /// (`false` = the target itself answered). Drives the *percentage of
    /// good replies* metric.
    pub from_cache: bool,
    /// Source route for the reply's own journey back to the requester.
    pub route: Route,
    /// Index into `route` of the current holder.
    pub hop: usize,
    /// Whether this is a *gratuitous* reply from promiscuous listening
    /// (shorter-route advertisement) rather than an answer to a request.
    pub gratuitous: bool,
}

impl RouteReply {
    /// The next hop toward the requester.
    ///
    /// # Panics
    ///
    /// Panics if the reply already arrived.
    pub fn next_hop(&self) -> NodeId {
        assert!(self.hop + 1 < self.route.len(), "reply already delivered");
        self.route.nodes()[self.hop + 1]
    }

    /// Whether the current holder is the reply's final recipient.
    pub fn at_destination(&self) -> bool {
        self.hop + 1 == self.route.len()
    }

    /// Wire size: IP header + reply option carrying the discovered route +
    /// source-route option for its own path.
    pub fn wire_size(&self) -> usize {
        IP_HEADER_BYTES
            + RREP_OPTION_FIXED_BYTES
            + ADDR_BYTES * self.discovered.len()
            + sr_option_bytes(self.route.len())
    }
}

/// A route error reporting a broken link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteErrorPkt {
    /// Unique id of this transmission (re-broadcasts get fresh uids).
    pub uid: PacketUid,
    /// The broken link.
    pub broken: Link,
    /// The node that detected the failure (via link-layer feedback).
    pub detector: NodeId,
    /// Delivery mode: unicast back to the affected source (base DSR) or
    /// MAC broadcast (wider error notification).
    pub delivery: ErrorDelivery,
}

/// How a route error travels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorDelivery {
    /// Base DSR: unicast to the source of the failed packet along the
    /// reversed prefix of its route.
    Unicast {
        /// The source being notified.
        to: NodeId,
        /// Source route from the detector back to `to`.
        route: Route,
        /// Index into `route` of the current holder.
        hop: usize,
    },
    /// Wider error notification: one-hop MAC broadcast; receivers decide
    /// whether to re-broadcast (cached + previously used the link).
    Broadcast,
}

impl RouteErrorPkt {
    /// The next hop for a unicast error, or `None` for broadcasts.
    pub fn next_hop(&self) -> Option<NodeId> {
        match &self.delivery {
            ErrorDelivery::Unicast { route, hop, .. } => route.nodes().get(hop + 1).copied(),
            ErrorDelivery::Broadcast => None,
        }
    }

    /// Wire size: IP header + error option (+ source-route option when
    /// unicast).
    pub fn wire_size(&self) -> usize {
        let sr = match &self.delivery {
            ErrorDelivery::Unicast { route, .. } => sr_option_bytes(route.len()),
            ErrorDelivery::Broadcast => 0,
        };
        IP_HEADER_BYTES + RERR_OPTION_FIXED_BYTES + sr
    }
}

/// Any DSR network-layer packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Source-routed application data.
    Data(DataPacket),
    /// Route discovery query.
    Request(RouteRequest),
    /// Route discovery answer.
    Reply(RouteReply),
    /// Broken-link notification.
    Error(RouteErrorPkt),
}

impl Packet {
    /// Unique id of this packet.
    pub fn uid(&self) -> PacketUid {
        match self {
            Packet::Data(p) => p.uid,
            Packet::Request(p) => p.uid,
            Packet::Reply(p) => p.uid,
            Packet::Error(p) => p.uid,
        }
    }

    /// Total bytes this packet occupies on the wire (excluding MAC/PHY
    /// framing, which the MAC layer adds).
    pub fn wire_size(&self) -> usize {
        match self {
            Packet::Data(p) => p.wire_size(),
            Packet::Request(p) => p.wire_size(),
            Packet::Reply(p) => p.wire_size(),
            Packet::Error(p) => p.wire_size(),
        }
    }

    /// Whether this is routing-protocol overhead (anything but data).
    pub fn is_routing_overhead(&self) -> bool {
        !matches!(self, Packet::Data(_))
    }

    /// Short human-readable tag for traces.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Packet::Data(_) => "DATA",
            Packet::Request(_) => "RREQ",
            Packet::Reply(_) => "RREP",
            Packet::Error(_) => "RERR",
        }
    }
}

impl crate::events::NetPacket for Packet {
    fn uid(&self) -> u64 {
        Packet::uid(self)
    }

    fn wire_size(&self) -> usize {
        Packet::wire_size(self)
    }

    fn is_routing_overhead(&self) -> bool {
        Packet::is_routing_overhead(self)
    }

    fn kind_str(&self) -> &'static str {
        Packet::kind_str(self)
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Packet::Data(p) => write!(f, "DATA#{} {}->{} via {}", p.uid, p.src, p.dst, p.route),
            Packet::Request(p) => {
                write!(
                    f,
                    "RREQ#{} {}=>{} id={} ttl={}",
                    p.uid, p.origin, p.target, p.request_id, p.ttl
                )
            }
            Packet::Reply(p) => write!(f, "RREP#{} route {}", p.uid, p.discovered),
            Packet::Error(p) => write!(f, "RERR#{} broken {}", p.uid, p.broken),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(ids: &[u16]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId::new(i)).collect()).expect("valid route")
    }

    fn data(ids: &[u16], hop: usize) -> DataPacket {
        let r = route(ids);
        DataPacket {
            uid: 1,
            src: r.source(),
            dst: r.destination(),
            seq: 0,
            payload_bytes: 512,
            sent_at: SimTime::ZERO,
            route: r,
            hop,
            salvage_count: 0,
        }
    }

    #[test]
    fn data_hop_navigation() {
        let p = data(&[0, 1, 2], 0);
        assert_eq!(p.current_hop(), NodeId::new(0));
        assert_eq!(p.next_hop(), NodeId::new(1));
        assert!(!p.at_destination());
        let last = data(&[0, 1, 2], 2);
        assert!(last.at_destination());
    }

    #[test]
    #[should_panic(expected = "already delivered")]
    fn next_hop_at_destination_panics() {
        let _ = data(&[0, 1], 1).next_hop();
    }

    #[test]
    fn data_wire_size_grows_with_route() {
        let short = data(&[0, 1], 0).wire_size();
        let long = data(&[0, 1, 2, 3], 0).wire_size();
        assert_eq!(long - short, 2 * ADDR_BYTES);
        assert_eq!(short, 20 + 4 + 2 * 4 + 512);
    }

    #[test]
    fn request_wire_size_counts_path_and_piggyback() {
        let mut req = RouteRequest {
            uid: 2,
            origin: NodeId::new(0),
            target: NodeId::new(9),
            request_id: 1,
            path: vec![NodeId::new(0), NodeId::new(1)],
            ttl: 255,
            piggyback_error: None,
        };
        let plain = req.wire_size();
        assert_eq!(plain, 20 + 8 + 2 * 4);
        req.piggyback_error = Some(Link::new(NodeId::new(3), NodeId::new(4)));
        assert_eq!(req.wire_size(), plain + RERR_OPTION_FIXED_BYTES);
    }

    #[test]
    fn reply_navigation_and_size() {
        let reply = RouteReply {
            uid: 3,
            discovered: route(&[0, 1, 2, 3]),
            from_cache: true,
            route: route(&[2, 1, 0]),
            hop: 0,
            gratuitous: false,
        };
        assert_eq!(reply.next_hop(), NodeId::new(1));
        assert!(!reply.at_destination());
        assert_eq!(reply.wire_size(), 20 + 4 + 4 * 4 + (4 + 3 * 4));
    }

    #[test]
    fn unicast_error_navigation() {
        let err = RouteErrorPkt {
            uid: 4,
            broken: Link::new(NodeId::new(2), NodeId::new(3)),
            detector: NodeId::new(2),
            delivery: ErrorDelivery::Unicast {
                to: NodeId::new(0),
                route: route(&[2, 1, 0]),
                hop: 0,
            },
        };
        assert_eq!(err.next_hop(), Some(NodeId::new(1)));
        assert!(err.wire_size() > IP_HEADER_BYTES + RERR_OPTION_FIXED_BYTES);
    }

    #[test]
    fn broadcast_error_has_no_next_hop() {
        let err = RouteErrorPkt {
            uid: 5,
            broken: Link::new(NodeId::new(2), NodeId::new(3)),
            detector: NodeId::new(2),
            delivery: ErrorDelivery::Broadcast,
        };
        assert_eq!(err.next_hop(), None);
        assert_eq!(err.wire_size(), IP_HEADER_BYTES + RERR_OPTION_FIXED_BYTES);
    }

    #[test]
    fn overhead_classification() {
        assert!(!Packet::Data(data(&[0, 1], 0)).is_routing_overhead());
        let err = RouteErrorPkt {
            uid: 6,
            broken: Link::new(NodeId::new(0), NodeId::new(1)),
            detector: NodeId::new(0),
            delivery: ErrorDelivery::Broadcast,
        };
        assert!(Packet::Error(err).is_routing_overhead());
    }

    #[test]
    fn display_is_nonempty() {
        let p = Packet::Data(data(&[0, 1], 0));
        assert!(format!("{p}").contains("DATA"));
        assert_eq!(p.kind_str(), "DATA");
    }
}
