//! Protocol-neutral vocabulary shared by routing agents, the simulation
//! driver, and the metrics layer: drop reasons, cache-hit kinds, semantic
//! metric events, and the [`NetPacket`] trait every network-layer packet
//! type implements.

use std::fmt;

use sim_core::NodeId;

use crate::route::{Link, Route};

/// Why a packet was dropped (metrics taxonomy). Shared across routing
/// protocols; not every protocol uses every reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Send buffer overflow at the source.
    SendBufferFull,
    /// Waited more than the send-buffer timeout for a route.
    SendBufferTimeout,
    /// Broken link en route and no cached alternative to salvage with.
    NoRouteToSalvage,
    /// Salvaged too many times already.
    SalvageLimit,
    /// The source route contains a negatively cached (recently broken)
    /// link.
    NegativeCacheHit,
    /// A control packet could not be delivered (failed unicast forward).
    ControlUndeliverable,
    /// A data packet arrived at a node that is not on its source route
    /// (stale forwarding state).
    NotOnRoute,
    /// No forwarding-table entry for the destination (table-driven
    /// protocols such as AODV).
    NoForwardingEntry,
    /// The packet's TTL expired.
    TtlExpired,
    /// The holding node's protocol state was reset while the packet was
    /// buffered (fault-injected crash-and-rejoin churn).
    NodeReset,
}

impl DropReason {
    /// Every reason, for exhaustive iteration (ledgers, tests).
    pub const ALL: [DropReason; 10] = [
        DropReason::SendBufferFull,
        DropReason::SendBufferTimeout,
        DropReason::NoRouteToSalvage,
        DropReason::SalvageLimit,
        DropReason::NegativeCacheHit,
        DropReason::ControlUndeliverable,
        DropReason::NotOnRoute,
        DropReason::NoForwardingEntry,
        DropReason::TtlExpired,
        DropReason::NodeReset,
    ];

    /// The reason's stable string spelling (trace lines, profiler tallies).
    pub const fn name(self) -> &'static str {
        match self {
            DropReason::SendBufferFull => "SendBufferFull",
            DropReason::SendBufferTimeout => "SendBufferTimeout",
            DropReason::NoRouteToSalvage => "NoRouteToSalvage",
            DropReason::SalvageLimit => "SalvageLimit",
            DropReason::NegativeCacheHit => "NegativeCacheHit",
            DropReason::ControlUndeliverable => "ControlUndeliverable",
            DropReason::NotOnRoute => "NotOnRoute",
            DropReason::NoForwardingEntry => "NoForwardingEntry",
            DropReason::TtlExpired => "TtlExpired",
            DropReason::NodeReset => "NodeReset",
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which cache use produced a cache hit (drives the *invalid cached
/// routes* metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheHitKind {
    /// Source found a route for its own data without discovery.
    Origination,
    /// Intermediate node re-routed a packet around a broken link.
    Salvage,
    /// Intermediate node answered a route request from its cache.
    Reply,
}

impl CacheHitKind {
    /// Stable string spelling for trace rows.
    pub const fn name(self) -> &'static str {
        match self {
            CacheHitKind::Origination => "origination",
            CacheHitKind::Salvage => "salvage",
            CacheHitKind::Reply => "reply",
        }
    }
}

/// How a route entered a cache (cache-decision trace vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheInsertProvenance {
    /// Carried by a route reply addressed to this node.
    Reply,
    /// Learned in passing: forwarded data, snooped frames, request
    /// reverse routes, reply transit segments.
    Overheard,
    /// Advertised by a gratuitous (shortcut) route reply.
    Gratuitous,
    /// Reserved: installed while salvaging. The path-cache implementation
    /// salvages from existing entries (a lookup, never an insert), so this
    /// provenance is defined for the trace format but currently unused.
    Salvage,
}

impl CacheInsertProvenance {
    /// Stable string spelling for trace rows.
    pub const fn name(self) -> &'static str {
        match self {
            CacheInsertProvenance::Reply => "reply",
            CacheInsertProvenance::Overheard => "overheard",
            CacheInsertProvenance::Gratuitous => "gratuitous",
            CacheInsertProvenance::Salvage => "salvage",
        }
    }
}

/// Why a link was purged from (or vetoed out of) a route cache
/// (cache-decision trace vocabulary). Timer expiry and capacity eviction
/// are per-route decisions, reported as [`CacheDecision::Expire`] and
/// [`CacheDecision::Evict`] instead of a removal cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheRemovalCause {
    /// A route error reached this node (unicast RERR, snooped error, or a
    /// gratuitous-repair piggyback on a route request).
    ErrorReceived,
    /// A wider-error broadcast was processed (first copy).
    WiderError,
    /// The node's own MAC exhausted retransmissions on the link.
    MacFeedback,
    /// The negative cache vetoed use of the link (an insert was truncated
    /// or refused, or a forward was refused).
    NegativeVeto,
    /// Preemptive repair purged the link after its receive power sank
    /// below the early-warning threshold (Preemptive-DSR).
    Preemptive,
}

impl CacheRemovalCause {
    /// Stable string spelling for trace rows.
    pub const fn name(self) -> &'static str {
        match self {
            CacheRemovalCause::ErrorReceived => "rerr",
            CacheRemovalCause::WiderError => "wider",
            CacheRemovalCause::MacFeedback => "mac",
            CacheRemovalCause::NegativeVeto => "neg-veto",
            CacheRemovalCause::Preemptive => "preempt",
        }
    }
}

/// Which action a non-optimal route suppression veto blocked
/// (cache-decision trace vocabulary for [`CacheDecision::Suppress`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuppressedAction {
    /// A cache insert was refused.
    Insert,
    /// A duplicate route reply was withheld.
    Reply,
}

impl SuppressedAction {
    /// Stable string spelling for trace rows.
    pub const fn name(self) -> &'static str {
        match self {
            SuppressedAction::Insert => "insert",
            SuppressedAction::Reply => "reply",
        }
    }
}

/// One route-cache decision, for the cache forensics trace. Emitted by
/// agents only when decision tracing is enabled; like every protocol
/// event, validity and staleness are judged by the driver's ground-truth
/// oracle, never here.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheDecision {
    /// A route entered (or refreshed) the cache.
    Insert {
        /// The route as inserted (after any negative-cache truncation).
        route: Route,
        /// How the agent came to know it.
        provenance: CacheInsertProvenance,
        /// Whether the cache reported a state change.
        changed: bool,
    },
    /// The cache was consulted for a route to `dst`.
    Lookup {
        /// The destination looked up.
        dst: NodeId,
        /// What the route was wanted for.
        purpose: CacheHitKind,
        /// The route found (`None` on a miss).
        route: Option<Route>,
    },
    /// A link believed broken was purged (or vetoed, see
    /// [`CacheRemovalCause::NegativeVeto`]).
    RemoveLink {
        /// The link in question.
        link: Link,
        /// What the purge was triggered by.
        cause: CacheRemovalCause,
        /// Whether the cache actually held the link.
        contained: bool,
    },
    /// Timer-based expiry pruned this stored route (pre-prune path).
    Expire {
        /// The route as stored before the prune.
        route: Route,
    },
    /// Capacity pressure evicted this stored route.
    Evict {
        /// The evicted route.
        route: Route,
    },
    /// `mark_used` refreshed last-used timestamps along `route`.
    Refresh {
        /// The route observed in use.
        route: Route,
    },
    /// Non-optimal route suppression vetoed an action involving `route`.
    Suppress {
        /// The route judged too long relative to the best known.
        route: Route,
        /// What the veto blocked (a cache insert or a duplicate reply).
        action: SuppressedAction,
    },
    /// A broken-link purge left a surviving multipath alternative in
    /// service for `dst` (no fresh discovery needed).
    Failover {
        /// The destination that kept connectivity.
        dst: NodeId,
        /// The surviving route now carrying the traffic.
        route: Route,
    },
}

/// Semantic protocol events for the metrics layer. Route validity is
/// *not* judged here — the driver checks the attached routes against the
/// ground-truth oracle at the instant the event is emitted.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolEvent {
    /// The agent accepted a fresh data packet from the application and
    /// assigned it a uid. Feeds the packet-conservation ledger.
    DataOriginated {
        /// The uid assigned to the new packet.
        uid: u64,
    },
    /// A discovery round was launched.
    DiscoveryStarted {
        /// Node being sought.
        target: NodeId,
        /// `false` for an initial restricted probe (TTL-limited).
        flood: bool,
    },
    /// This node generated a route reply.
    ReplyOriginated {
        /// `true` when answered from cached state rather than by the
        /// target itself.
        from_cache: bool,
    },
    /// A route reply reached the node that requested it. The driver
    /// validates `discovered` for the *percentage of good replies* metric.
    /// Protocols that do not expose full routes (e.g. AODV) omit it.
    ReplyAccepted {
        /// The route the reply carried, when the protocol knows it.
        discovered: Option<Route>,
    },
    /// A route was pulled from a cache and put into use. The driver
    /// validates it for the *percentage of invalid cached routes* metric.
    CacheHit {
        /// The cached route placed into service.
        route: Route,
        /// What it was used for.
        kind: CacheHitKind,
    },
    /// A route error was originated at this node.
    RouteErrorSent {
        /// `true` under wider error notification (MAC broadcast).
        wider: bool,
    },
    /// A wider error was re-broadcast by this node.
    RouteErrorRebroadcast,
    /// Link-layer feedback reported a broken link.
    LinkBreakDetected {
        /// The failed link.
        link: Link,
    },
    /// A route-cache decision was made (cache forensics; emitted only when
    /// decision tracing is enabled, so the off path carries no cost).
    CacheDecision {
        /// The decision.
        decision: CacheDecision,
    },
    /// Preemptive repair fired: a next-hop's receive power crossed below
    /// the early-warning threshold and the link was purged ahead of an
    /// actual break. Always emitted (drives the `preemptive_repairs`
    /// counter), independent of decision tracing.
    PreemptiveRepair {
        /// The link judged about to break.
        link: Link,
    },
    /// Non-optimal route suppression vetoed a cache insert. Always
    /// emitted (drives the `suppressed_inserts` counter).
    SuppressedInsert,
    /// A multipath cache failed over to a surviving link-disjoint route
    /// after a purge, avoiding a fresh discovery. Always emitted (drives
    /// the `failovers` counter).
    Failover {
        /// The destination that kept a working route.
        dst: NodeId,
    },
}

/// What the simulation driver needs to know about any network-layer packet
/// type, independent of the routing protocol that defines it.
pub trait NetPacket: Clone + Send + 'static {
    /// Globally unique packet id (stable across hops).
    fn uid(&self) -> u64;

    /// Total bytes on the wire (excluding MAC/PHY framing).
    fn wire_size(&self) -> usize;

    /// Whether this is routing-protocol overhead (anything but data).
    fn is_routing_overhead(&self) -> bool;

    /// Short human-readable tag for traces ("DATA", "RREQ", ...).
    fn kind_str(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_reasons_are_hashable_and_distinct() {
        use std::collections::HashSet;
        let all = [
            DropReason::SendBufferFull,
            DropReason::SendBufferTimeout,
            DropReason::NoRouteToSalvage,
            DropReason::SalvageLimit,
            DropReason::NegativeCacheHit,
            DropReason::ControlUndeliverable,
            DropReason::NotOnRoute,
            DropReason::NoForwardingEntry,
            DropReason::TtlExpired,
            DropReason::NodeReset,
        ];
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
        assert_eq!(all, DropReason::ALL);
    }

    #[test]
    fn drop_reason_display_matches_debug() {
        // The trace format promises the historical string spellings, which
        // happen to coincide with the variant names.
        for reason in DropReason::ALL {
            assert_eq!(format!("{reason}"), format!("{reason:?}"));
        }
    }

    #[test]
    fn reply_accepted_allows_unknown_route() {
        let ev = ProtocolEvent::ReplyAccepted { discovered: None };
        assert_eq!(ev, ProtocolEvent::ReplyAccepted { discovered: None });
    }
}
