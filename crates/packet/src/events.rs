//! Protocol-neutral vocabulary shared by routing agents, the simulation
//! driver, and the metrics layer: drop reasons, cache-hit kinds, semantic
//! metric events, and the [`NetPacket`] trait every network-layer packet
//! type implements.

use std::fmt;

use sim_core::NodeId;

use crate::route::{Link, Route};

/// Why a packet was dropped (metrics taxonomy). Shared across routing
/// protocols; not every protocol uses every reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Send buffer overflow at the source.
    SendBufferFull,
    /// Waited more than the send-buffer timeout for a route.
    SendBufferTimeout,
    /// Broken link en route and no cached alternative to salvage with.
    NoRouteToSalvage,
    /// Salvaged too many times already.
    SalvageLimit,
    /// The source route contains a negatively cached (recently broken)
    /// link.
    NegativeCacheHit,
    /// A control packet could not be delivered (failed unicast forward).
    ControlUndeliverable,
    /// A data packet arrived at a node that is not on its source route
    /// (stale forwarding state).
    NotOnRoute,
    /// No forwarding-table entry for the destination (table-driven
    /// protocols such as AODV).
    NoForwardingEntry,
    /// The packet's TTL expired.
    TtlExpired,
    /// The holding node's protocol state was reset while the packet was
    /// buffered (fault-injected crash-and-rejoin churn).
    NodeReset,
}

impl DropReason {
    /// Every reason, for exhaustive iteration (ledgers, tests).
    pub const ALL: [DropReason; 10] = [
        DropReason::SendBufferFull,
        DropReason::SendBufferTimeout,
        DropReason::NoRouteToSalvage,
        DropReason::SalvageLimit,
        DropReason::NegativeCacheHit,
        DropReason::ControlUndeliverable,
        DropReason::NotOnRoute,
        DropReason::NoForwardingEntry,
        DropReason::TtlExpired,
        DropReason::NodeReset,
    ];

    /// The reason's stable string spelling (trace lines, profiler tallies).
    pub const fn name(self) -> &'static str {
        match self {
            DropReason::SendBufferFull => "SendBufferFull",
            DropReason::SendBufferTimeout => "SendBufferTimeout",
            DropReason::NoRouteToSalvage => "NoRouteToSalvage",
            DropReason::SalvageLimit => "SalvageLimit",
            DropReason::NegativeCacheHit => "NegativeCacheHit",
            DropReason::ControlUndeliverable => "ControlUndeliverable",
            DropReason::NotOnRoute => "NotOnRoute",
            DropReason::NoForwardingEntry => "NoForwardingEntry",
            DropReason::TtlExpired => "TtlExpired",
            DropReason::NodeReset => "NodeReset",
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which cache use produced a cache hit (drives the *invalid cached
/// routes* metric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheHitKind {
    /// Source found a route for its own data without discovery.
    Origination,
    /// Intermediate node re-routed a packet around a broken link.
    Salvage,
    /// Intermediate node answered a route request from its cache.
    Reply,
}

/// Semantic protocol events for the metrics layer. Route validity is
/// *not* judged here — the driver checks the attached routes against the
/// ground-truth oracle at the instant the event is emitted.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolEvent {
    /// The agent accepted a fresh data packet from the application and
    /// assigned it a uid. Feeds the packet-conservation ledger.
    DataOriginated {
        /// The uid assigned to the new packet.
        uid: u64,
    },
    /// A discovery round was launched.
    DiscoveryStarted {
        /// Node being sought.
        target: NodeId,
        /// `false` for an initial restricted probe (TTL-limited).
        flood: bool,
    },
    /// This node generated a route reply.
    ReplyOriginated {
        /// `true` when answered from cached state rather than by the
        /// target itself.
        from_cache: bool,
    },
    /// A route reply reached the node that requested it. The driver
    /// validates `discovered` for the *percentage of good replies* metric.
    /// Protocols that do not expose full routes (e.g. AODV) omit it.
    ReplyAccepted {
        /// The route the reply carried, when the protocol knows it.
        discovered: Option<Route>,
    },
    /// A route was pulled from a cache and put into use. The driver
    /// validates it for the *percentage of invalid cached routes* metric.
    CacheHit {
        /// The cached route placed into service.
        route: Route,
        /// What it was used for.
        kind: CacheHitKind,
    },
    /// A route error was originated at this node.
    RouteErrorSent {
        /// `true` under wider error notification (MAC broadcast).
        wider: bool,
    },
    /// A wider error was re-broadcast by this node.
    RouteErrorRebroadcast,
    /// Link-layer feedback reported a broken link.
    LinkBreakDetected {
        /// The failed link.
        link: Link,
    },
}

/// What the simulation driver needs to know about any network-layer packet
/// type, independent of the routing protocol that defines it.
pub trait NetPacket: Clone + Send + 'static {
    /// Globally unique packet id (stable across hops).
    fn uid(&self) -> u64;

    /// Total bytes on the wire (excluding MAC/PHY framing).
    fn wire_size(&self) -> usize;

    /// Whether this is routing-protocol overhead (anything but data).
    fn is_routing_overhead(&self) -> bool;

    /// Short human-readable tag for traces ("DATA", "RREQ", ...).
    fn kind_str(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_reasons_are_hashable_and_distinct() {
        use std::collections::HashSet;
        let all = [
            DropReason::SendBufferFull,
            DropReason::SendBufferTimeout,
            DropReason::NoRouteToSalvage,
            DropReason::SalvageLimit,
            DropReason::NegativeCacheHit,
            DropReason::ControlUndeliverable,
            DropReason::NotOnRoute,
            DropReason::NoForwardingEntry,
            DropReason::TtlExpired,
            DropReason::NodeReset,
        ];
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
        assert_eq!(all, DropReason::ALL);
    }

    #[test]
    fn drop_reason_display_matches_debug() {
        // The trace format promises the historical string spellings, which
        // happen to coincide with the variant names.
        for reason in DropReason::ALL {
            assert_eq!(format!("{reason}"), format!("{reason:?}"));
        }
    }

    #[test]
    fn reply_accepted_allows_unknown_route() {
        let ev = ProtocolEvent::ReplyAccepted { discovered: None };
        assert_eq!(ev, ProtocolEvent::ReplyAccepted { discovered: None });
    }
}
