//! Loop-free source routes.
//!
//! DSR's central data structure: an explicit node sequence from a source to
//! a destination, carried in every data packet header. Because the full
//! route is visible, loop freedom is a *representation invariant* — a route
//! never contains the same node twice — which this module enforces at
//! construction ([`Route::new`]) so the rest of the protocol can rely on it.

use std::fmt;

use sim_core::NodeId;

/// A directed link between two neighboring nodes, as named by route error
/// packets and negative cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// Upstream endpoint (the node that detected or uses the link).
    pub from: NodeId,
    /// Downstream endpoint.
    pub to: NodeId,
}

impl Link {
    /// Creates a directed link.
    pub const fn new(from: NodeId, to: NodeId) -> Self {
        Link { from, to }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// Error returned when a node sequence cannot form a valid source route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidRoute {
    /// The sequence was empty.
    Empty,
    /// A node appeared more than once (would create a loop).
    Loop(NodeId),
}

impl fmt::Display for InvalidRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidRoute::Empty => write!(f, "route must contain at least one node"),
            InvalidRoute::Loop(n) => write!(f, "route visits {n} twice"),
        }
    }
}

impl std::error::Error for InvalidRoute {}

/// An ordered, loop-free sequence of nodes from a source to a destination
/// (both inclusive).
///
/// # Example
///
/// ```
/// use packet::{Route, Link};
/// use sim_core::NodeId;
///
/// let route = Route::new(vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)])?;
/// assert_eq!(route.len(), 3);
/// assert_eq!(route.hops(), 2);
/// assert!(route.contains_link(Link::new(NodeId::new(1), NodeId::new(2))));
/// # Ok::<(), packet::InvalidRoute>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    nodes: Vec<NodeId>,
}

impl Route {
    /// Creates a route, validating the loop-freedom invariant.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRoute::Empty`] for an empty sequence and
    /// [`InvalidRoute::Loop`] if any node repeats.
    pub fn new(nodes: Vec<NodeId>) -> Result<Self, InvalidRoute> {
        if nodes.is_empty() {
            return Err(InvalidRoute::Empty);
        }
        for (i, &n) in nodes.iter().enumerate() {
            if nodes[..i].contains(&n) {
                return Err(InvalidRoute::Loop(n));
            }
        }
        Ok(Route { nodes })
    }

    /// A single-node route (source == destination); useful as a neighbor
    /// route seed.
    pub fn single(node: NodeId) -> Self {
        Route { nodes: vec![node] }
    }

    /// The source (first node).
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// The destination (last node).
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("routes are non-empty")
    }

    /// Number of nodes on the route.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Routes are never empty; this always returns `false` and exists only
    /// to satisfy the `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of links (`len() - 1`).
    pub fn hops(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Position of `node` on the route.
    pub fn position(&self, node: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == node)
    }

    /// Whether the route traverses `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Whether the route uses the directed link `link`.
    pub fn contains_link(&self, link: Link) -> bool {
        self.nodes.windows(2).any(|w| w[0] == link.from && w[1] == link.to)
    }

    /// The `i`-th link of the route (`route[i] -> route[i + 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= hops()`.
    pub fn link(&self, i: usize) -> Link {
        Link::new(self.nodes[i], self.nodes[i + 1])
    }

    /// Iterates over the directed links of the route in order.
    pub fn links(&self) -> impl Iterator<Item = Link> + '_ {
        self.nodes.windows(2).map(|w| Link::new(w[0], w[1]))
    }

    /// The next hop after `node`, if `node` is on the route and not the
    /// destination.
    pub fn next_hop_after(&self, node: NodeId) -> Option<NodeId> {
        let i = self.position(node)?;
        self.nodes.get(i + 1).copied()
    }

    /// The route reversed (destination becomes source). Loop freedom is
    /// preserved by construction.
    pub fn reversed(&self) -> Route {
        let mut nodes = self.nodes.clone();
        nodes.reverse();
        Route { nodes }
    }

    /// The prefix of this route up to and including `node`, or `None` if
    /// `node` is not on the route.
    pub fn prefix_through(&self, node: NodeId) -> Option<Route> {
        let i = self.position(node)?;
        Some(Route { nodes: self.nodes[..=i].to_vec() })
    }

    /// The suffix of this route from `node` (inclusive) to the destination,
    /// or `None` if `node` is not on the route.
    pub fn suffix_from(&self, node: NodeId) -> Option<Route> {
        let i = self.position(node)?;
        Some(Route { nodes: self.nodes[i..].to_vec() })
    }

    /// Truncates the route just *before* the broken link, i.e. keeps nodes
    /// up to and including `link.from`. Returns `None` if the route does
    /// not use `link`.
    ///
    /// This is the cache-update primitive of the paper's wider error
    /// notification: *"all source routes containing the broken link are
    /// truncated at the point of failure."*
    pub fn truncate_before_link(&self, link: Link) -> Option<Route> {
        let i = self.nodes.windows(2).position(|w| w[0] == link.from && w[1] == link.to)?;
        Some(Route { nodes: self.nodes[..=i].to_vec() })
    }

    /// Concatenates `self` (ending at some node) with `rest` (starting at
    /// that same node), e.g. a request path joined to a cached route when an
    /// intermediate node answers from its cache.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRoute::Loop`] if the concatenation would visit a node
    /// twice — DSR forbids such replies precisely because the resulting
    /// source route would loop.
    ///
    /// # Panics
    ///
    /// Panics if `self.destination() != rest.source()`; callers join routes
    /// only at a shared node.
    pub fn join(&self, rest: &Route) -> Result<Route, InvalidRoute> {
        assert_eq!(self.destination(), rest.source(), "joined routes must share the junction node");
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&rest.nodes[1..]);
        Route::new(nodes)
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for n in &self.nodes {
            if !first {
                write!(f, "-")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        Ok(())
    }
}

impl AsRef<[NodeId]> for Route {
    fn as_ref(&self) -> &[NodeId] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ids: &[u16]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId::new(i)).collect()).expect("valid route")
    }

    #[test]
    fn rejects_empty_and_loops() {
        assert_eq!(Route::new(vec![]), Err(InvalidRoute::Empty));
        let looped = vec![NodeId::new(0), NodeId::new(1), NodeId::new(0)];
        assert_eq!(Route::new(looped), Err(InvalidRoute::Loop(NodeId::new(0))));
    }

    #[test]
    fn endpoints_and_hops() {
        let route = r(&[3, 1, 4]);
        assert_eq!(route.source(), NodeId::new(3));
        assert_eq!(route.destination(), NodeId::new(4));
        assert_eq!(route.hops(), 2);
        assert_eq!(route.len(), 3);
    }

    #[test]
    fn link_queries() {
        let route = r(&[0, 1, 2, 3]);
        assert!(route.contains_link(Link::new(NodeId::new(1), NodeId::new(2))));
        // Links are directed.
        assert!(!route.contains_link(Link::new(NodeId::new(2), NodeId::new(1))));
        assert_eq!(route.link(0), Link::new(NodeId::new(0), NodeId::new(1)));
        assert_eq!(route.links().count(), 3);
    }

    #[test]
    fn next_hop() {
        let route = r(&[0, 1, 2]);
        assert_eq!(route.next_hop_after(NodeId::new(0)), Some(NodeId::new(1)));
        assert_eq!(route.next_hop_after(NodeId::new(2)), None);
        assert_eq!(route.next_hop_after(NodeId::new(9)), None);
    }

    #[test]
    fn reversal_swaps_endpoints() {
        let route = r(&[0, 1, 2]);
        let rev = route.reversed();
        assert_eq!(rev.source(), NodeId::new(2));
        assert_eq!(rev.destination(), NodeId::new(0));
        assert_eq!(rev.reversed(), route);
    }

    #[test]
    fn prefix_and_suffix() {
        let route = r(&[0, 1, 2, 3]);
        assert_eq!(route.prefix_through(NodeId::new(2)), Some(r(&[0, 1, 2])));
        assert_eq!(route.suffix_from(NodeId::new(2)), Some(r(&[2, 3])));
        assert_eq!(route.prefix_through(NodeId::new(7)), None);
    }

    #[test]
    fn truncation_at_broken_link() {
        let route = r(&[0, 1, 2, 3]);
        let broken = Link::new(NodeId::new(2), NodeId::new(3));
        assert_eq!(route.truncate_before_link(broken), Some(r(&[0, 1, 2])));
        let elsewhere = Link::new(NodeId::new(3), NodeId::new(2));
        assert_eq!(route.truncate_before_link(elsewhere), None);
    }

    #[test]
    fn join_at_junction() {
        let a = r(&[0, 1, 2]);
        let b = r(&[2, 3, 4]);
        assert_eq!(a.join(&b).expect("loop-free"), r(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn join_detects_loop() {
        let a = r(&[0, 1, 2]);
        let b = r(&[2, 1, 5]); // node 1 repeats
        assert_eq!(a.join(&b), Err(InvalidRoute::Loop(NodeId::new(1))));
    }

    #[test]
    #[should_panic(expected = "junction")]
    fn join_requires_shared_node() {
        let _ = r(&[0, 1]).join(&r(&[2, 3]));
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", r(&[0, 1, 2])), "n0-n1-n2");
        assert_eq!(format!("{}", Link::new(NodeId::new(1), NodeId::new(2))), "n1->n2");
    }

    #[test]
    fn single_node_route() {
        let route = Route::single(NodeId::new(5));
        assert_eq!(route.hops(), 0);
        assert_eq!(route.source(), route.destination());
    }
}
