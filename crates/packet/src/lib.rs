//! Typed packet formats for the DSR/MANET simulator.
//!
//! - [`Route`] / [`Link`] — loop-free source routes and directed links;
//! - [`Packet`] and its variants — the four DSR network-layer packet kinds
//!   with byte-accurate wire sizes.
//!
//! MAC-layer frames (RTS/CTS/DATA/ACK) live in the `mac` crate; this crate
//! covers everything the routing layer sees.

pub mod dsr;
pub mod events;
pub mod route;

pub use dsr::{
    DataPacket, ErrorDelivery, Packet, PacketUid, RouteErrorPkt, RouteReply, RouteRequest,
    ADDR_BYTES, IP_HEADER_BYTES,
};
pub use events::{
    CacheDecision, CacheHitKind, CacheInsertProvenance, CacheRemovalCause, DropReason, NetPacket,
    ProtocolEvent, SuppressedAction,
};
pub use route::{InvalidRoute, Link, Route};
